"""Implementation of the simulated system calls.

Each syscall follows the same discipline:

1. ``begin_syscall`` — clock tick, accounting, ``syscallbegin`` chain;
2. mediated path walk — one ``DIR_SEARCH`` per component and one
   ``LNK_FILE_READ`` per symlink traversal, each passing DAC -> MAC ->
   Process Firewall (this is what lets per-component rules like
   ``safe_open_PF`` and R8 see every step);
3. a final mediated operation specific to the call (``FILE_OPEN``,
   ``SOCKET_BIND``, ``PROCESS_SIGNAL_DELIVERY``, ...).

Deliberately preserved sharp edges (they are the attack surface):

- ``open(O_CREAT)`` follows a symlink in the terminal position, so a
  planted ``/tmp`` link redirects the create;
- ``stat``/``open`` pairs are not atomic — nothing stops the namespace
  from changing between them;
- inode numbers recycle once free, so ``(dev, ino)`` comparisons can be
  defeated by the cryogenic-sleep pattern;
- ``access`` checks the *real* UID while ``open`` checks the effective
  UID, the classic setuid race.
"""

from __future__ import annotations

import posixpath
from repro import errors
from repro.proc import signals as sig
from repro.proc.process import Credentials, Process
from repro.proc.stack import BinaryImage
from repro.security.dac import dac_check
from repro.security.lsm import Op, Operation
from repro.vfs.file import OpenFile, OpenFlags
from repro.vfs.inode import FileType
from repro.vfs.namei import WalkEvent
from repro.vfs.stat import StatResult

#: Default creation mask applied to new files and directories.
DEFAULT_UMASK = 0o022

#: Signals whose default disposition terminates the process.
_DEFAULT_FATAL = frozenset(
    {sig.SIGHUP, sig.SIGINT, sig.SIGKILL, sig.SIGSEGV, sig.SIGALRM, sig.SIGTERM, sig.SIGUSR1, sig.SIGUSR2}
)


class SyscallAPI:
    """All simulated syscalls, bound to one :class:`repro.kernel.Kernel`."""

    def __init__(self, kernel):
        self.kernel = kernel

    # ------------------------------------------------------------------
    # mediated path walking
    # ------------------------------------------------------------------

    def _walk(self, proc, path, syscall, seq, follow_final=True, want_parent=False):
        """Resolve ``path`` with per-component mediation."""
        last_dir = [None]  # directory most recently searched (link parent)
        kernel = self.kernel
        mediate = kernel.mediate
        walker = kernel.walker

        def observe(step):
            if step.event is WalkEvent.LOOKUP:
                last_dir[0] = step.inode
                operation = Operation(
                    proc, Op.DIR_SEARCH, obj=step.inode, path=step.prefix, syscall=syscall, args=(path,)
                )
                operation.extra["syscall_seq"] = seq
                operation.extra["component"] = step.name
                mediate(operation, want="x", audit_path=step.prefix + "/" + step.name)
            elif step.event is WalkEvent.SYMLINK_FOLLOW:
                operation = Operation(
                    proc, Op.LNK_FILE_READ, obj=step.inode, path=step.prefix + "/" + step.name,
                    syscall=syscall, args=(path,),
                )
                operation.extra["syscall_seq"] = seq
                parent = last_dir[0]
                if parent is not None and parent.is_sticky:
                    operation.extra["sticky_parent"] = parent
                link = step.inode
                parent_prefix = step.prefix

                def resolve_target(_link=link, _prefix=parent_prefix):
                    """Lazily resolve the link body to its target inode."""
                    target = _link.symlink_target or ""
                    try:
                        if target.startswith("/"):
                            return walker.resolve(target).inode
                        base = _prefix if _prefix != "/" else ""
                        return walker.resolve(base + "/" + target).inode
                    except errors.KernelError:
                        return None

                operation.extra["link_target_resolver"] = resolve_target
                mediate(operation)

        return walker.resolve(
            path, cwd=proc.cwd, follow_final=follow_final, want_parent=want_parent, observer=observe
        )

    def _final_op(self, proc, op, inode, path, syscall, seq, want=None, args=(), extra=None):
        operation = Operation(proc, op, obj=inode, path=path, syscall=syscall, args=args)
        operation.extra["syscall_seq"] = seq
        if extra:
            operation.extra.update(extra)
        self.kernel.mediate(operation, want=want)
        return operation

    # ------------------------------------------------------------------
    # open / close / read / write
    # ------------------------------------------------------------------

    def open(self, proc, path, flags=OpenFlags.O_RDONLY, mode=0o644, label=None):
        """Open (and possibly create) a file; returns a descriptor."""
        flags = OpenFlags(flags)
        seq = self.kernel.begin_syscall(proc, "open", (path, int(flags)))
        inode, canonical = self._resolve_open(proc, path, flags, mode, label, seq)
        if flags & OpenFlags.O_DIRECTORY and not inode.is_dir:
            raise errors.ENOTDIR(canonical)
        if inode.is_dir and flags.wants_write:
            raise errors.EISDIR(canonical)
        want = "w" if flags.wants_write else "r"
        self._final_op(proc, Op.FILE_OPEN, inode, canonical, "open", seq, want=want, args=(path, int(flags)))
        if flags & OpenFlags.O_TRUNC and flags.wants_write:
            inode.data = b""
        open_file = OpenFile(inode, flags, canonical, self.kernel.fs.inodes)
        return proc.install_fd(open_file)

    def _resolve_open(self, proc, path, flags, mode, label, seq):
        """The open-specific tail of path resolution.

        Loops over terminal symlinks so that ``O_CREAT`` through a link
        lands on the link *target* (the /tmp-squat attack path), and a
        dangling link causes creation at the target location.
        """
        current_path = path
        for _ in range(self.kernel.walker.max_symlinks):
            resolved = self._walk(proc, current_path, "open", seq, want_parent=True)
            child = resolved.inode
            if child is None:
                if not flags & OpenFlags.O_CREAT:
                    raise errors.ENOENT(resolved.path)
                return self._create_at(proc, resolved, mode, label, seq), resolved.path
            if child.is_symlink:
                if flags & OpenFlags.O_NOFOLLOW:
                    raise errors.ELOOP(resolved.path)
                operation = Operation(
                    proc, Op.LNK_FILE_READ, obj=child, path=resolved.path, syscall="open", args=(path,)
                )
                operation.extra["syscall_seq"] = seq
                if resolved.parent is not None and resolved.parent.is_sticky:
                    operation.extra["sticky_parent"] = resolved.parent
                walker = self.kernel.walker
                parent_path = posixpath.dirname(resolved.path) or "/"

                def resolve_target(_link=child, _prefix=parent_path):
                    target = _link.symlink_target or ""
                    try:
                        if target.startswith("/"):
                            return walker.resolve(target).inode
                        base = _prefix if _prefix != "/" else ""
                        return walker.resolve(base + "/" + target).inode
                    except errors.KernelError:
                        return None

                operation.extra["link_target_resolver"] = resolve_target
                self.kernel.mediate(operation)
                target = child.symlink_target or ""
                if target.startswith("/"):
                    current_path = target
                else:
                    base = posixpath.dirname(resolved.path) or "/"
                    current_path = posixpath.join(base, target)
                continue
            if flags & OpenFlags.O_CREAT and flags & OpenFlags.O_EXCL:
                raise errors.EEXIST(resolved.path)
            return child, resolved.path
        raise errors.ELOOP(path)

    def _create_at(self, proc, resolved, mode, label, seq):
        """Create a regular file at an already-resolved parent slot."""
        parent = resolved.parent
        dac_check(proc.creds, parent, "w")
        self._final_op(proc, Op.DIR_WRITE, parent, posixpath.dirname(resolved.path) or "/", "open", seq)
        inode = self.kernel.fs.create(
            parent,
            resolved.name,
            FileType.REG,
            uid=proc.creds.euid,
            gid=proc.creds.egid,
            mode=mode & ~getattr(proc, "umask", DEFAULT_UMASK),
            label=label,
        )
        self._final_op(proc, Op.FILE_CREATE, inode, resolved.path, "open", seq)
        return inode

    def close(self, proc, fd):
        self.kernel.begin_syscall(proc, "close", (fd,))
        open_file = proc.drop_fd(fd)
        open_file.close()

    def read(self, proc, fd, size=None):
        seq = self.kernel.begin_syscall(proc, "read", (fd,))
        open_file = proc.get_fd(fd)
        self._final_op(proc, Op.FILE_READ, open_file.inode, open_file.path, "read", seq, args=(fd,))
        return open_file.read(size)

    def write(self, proc, fd, data):
        seq = self.kernel.begin_syscall(proc, "write", (fd,))
        open_file = proc.get_fd(fd)
        self._final_op(proc, Op.FILE_WRITE, open_file.inode, open_file.path, "write", seq, args=(fd,))
        return open_file.write(data)

    # ------------------------------------------------------------------
    # stat family
    # ------------------------------------------------------------------

    def stat(self, proc, path):
        seq = self.kernel.begin_syscall(proc, "stat", (path,))
        resolved = self._walk(proc, path, "stat", seq, follow_final=True)
        if resolved.inode is None:
            raise errors.ENOENT(path)
        self._final_op(proc, Op.FILE_GETATTR, resolved.inode, resolved.path, "stat", seq, args=(path,))
        return StatResult(resolved.inode)

    def lstat(self, proc, path):
        seq = self.kernel.begin_syscall(proc, "lstat", (path,))
        resolved = self._walk(proc, path, "lstat", seq, follow_final=False)
        if resolved.inode is None:
            raise errors.ENOENT(path)
        self._final_op(proc, Op.FILE_GETATTR, resolved.inode, resolved.path, "lstat", seq, args=(path,))
        return StatResult(resolved.inode)

    def fstat(self, proc, fd):
        seq = self.kernel.begin_syscall(proc, "fstat", (fd,))
        open_file = proc.get_fd(fd)
        self._final_op(proc, Op.FILE_GETATTR, open_file.inode, open_file.path, "fstat", seq, args=(fd,))
        return StatResult(open_file.inode)

    def readlink(self, proc, path):
        seq = self.kernel.begin_syscall(proc, "readlink", (path,))
        resolved = self._walk(proc, path, "readlink", seq, follow_final=False)
        if resolved.inode is None:
            raise errors.ENOENT(path)
        if not resolved.inode.is_symlink:
            raise errors.EINVAL("{} is not a symlink".format(path))
        self._final_op(proc, Op.FILE_GETATTR, resolved.inode, resolved.path, "readlink", seq, args=(path,))
        return resolved.inode.symlink_target

    def access(self, proc, path, want="r"):
        """POSIX ``access``: checks the **real** UID — the TOCTTOU trap."""
        seq = self.kernel.begin_syscall(proc, "access", (path, want))
        resolved = self._walk(proc, path, "access", seq, follow_final=True)
        if resolved.inode is None:
            raise errors.ENOENT(path)
        real = Credentials(uid=proc.creds.uid, gid=proc.creds.gid)
        dac_check(real, resolved.inode, want)
        self._final_op(proc, Op.FILE_GETATTR, resolved.inode, resolved.path, "access", seq, args=(path, want))
        return True

    # ------------------------------------------------------------------
    # namespace mutation
    # ------------------------------------------------------------------

    def mkdir(self, proc, path, mode=0o755, label=None):
        seq = self.kernel.begin_syscall(proc, "mkdir", (path,))
        resolved = self._walk(proc, path, "mkdir", seq, want_parent=True)
        if resolved.inode is not None:
            raise errors.EEXIST(resolved.path)
        dac_check(proc.creds, resolved.parent, "w")
        self._final_op(proc, Op.DIR_WRITE, resolved.parent, posixpath.dirname(resolved.path) or "/", "mkdir", seq)
        inode = self.kernel.fs.create(
            resolved.parent,
            resolved.name,
            FileType.DIR,
            uid=proc.creds.euid,
            gid=proc.creds.egid,
            mode=mode & ~getattr(proc, "umask", DEFAULT_UMASK),
            label=label,
        )
        self._final_op(proc, Op.FILE_CREATE, inode, resolved.path, "mkdir", seq)
        return inode

    def symlink(self, proc, target, path, label=None):
        seq = self.kernel.begin_syscall(proc, "symlink", (target, path))
        resolved = self._walk(proc, path, "symlink", seq, want_parent=True)
        if resolved.inode is not None:
            raise errors.EEXIST(resolved.path)
        dac_check(proc.creds, resolved.parent, "w")
        self._final_op(proc, Op.DIR_WRITE, resolved.parent, posixpath.dirname(resolved.path) or "/", "symlink", seq)
        inode = self.kernel.fs.symlink(
            resolved.parent, resolved.name, target, uid=proc.creds.euid, gid=proc.creds.egid, label=label
        )
        self._final_op(proc, Op.FILE_CREATE, inode, resolved.path, "symlink", seq)
        return inode

    def link(self, proc, existing, path):
        seq = self.kernel.begin_syscall(proc, "link", (existing, path))
        source = self._walk(proc, existing, "link", seq, follow_final=False)
        if source.inode is None:
            raise errors.ENOENT(existing)
        resolved = self._walk(proc, path, "link", seq, want_parent=True)
        if resolved.inode is not None:
            raise errors.EEXIST(resolved.path)
        dac_check(proc.creds, resolved.parent, "w")
        self._final_op(proc, Op.DIR_WRITE, resolved.parent, posixpath.dirname(resolved.path) or "/", "link", seq)
        return self.kernel.fs.hardlink(resolved.parent, resolved.name, source.inode)

    def _sticky_check(self, proc, parent, child):
        """World-writable-directory protection (sticky bit, e.g. /tmp)."""
        if parent.is_sticky and proc.creds.euid not in (0, child.uid, parent.uid):
            raise errors.EPERM("sticky directory: uid {} may not remove inode {}".format(proc.creds.euid, child.ino))

    def unlink(self, proc, path):
        seq = self.kernel.begin_syscall(proc, "unlink", (path,))
        resolved = self._walk(proc, path, "unlink", seq, want_parent=True)
        if resolved.inode is None:
            raise errors.ENOENT(resolved.path)
        dac_check(proc.creds, resolved.parent, "w")
        self._sticky_check(proc, resolved.parent, resolved.inode)
        self._final_op(proc, Op.FILE_UNLINK, resolved.inode, resolved.path, "unlink", seq, args=(path,))
        self.kernel.fs.unlink(resolved.parent, resolved.name)

    def rmdir(self, proc, path):
        seq = self.kernel.begin_syscall(proc, "rmdir", (path,))
        resolved = self._walk(proc, path, "rmdir", seq, want_parent=True)
        if resolved.inode is None:
            raise errors.ENOENT(resolved.path)
        dac_check(proc.creds, resolved.parent, "w")
        self._sticky_check(proc, resolved.parent, resolved.inode)
        self._final_op(proc, Op.FILE_UNLINK, resolved.inode, resolved.path, "rmdir", seq, args=(path,))
        self.kernel.fs.rmdir(resolved.parent, resolved.name)

    def rename(self, proc, old, new):
        seq = self.kernel.begin_syscall(proc, "rename", (old, new))
        src = self._walk(proc, old, "rename", seq, want_parent=True)
        if src.inode is None:
            raise errors.ENOENT(old)
        dst = self._walk(proc, new, "rename", seq, want_parent=True)
        dac_check(proc.creds, src.parent, "w")
        dac_check(proc.creds, dst.parent, "w")
        self._sticky_check(proc, src.parent, src.inode)
        if dst.inode is not None:
            self._sticky_check(proc, dst.parent, dst.inode)
        self._final_op(proc, Op.DIR_WRITE, dst.parent, posixpath.dirname(dst.path) or "/", "rename", seq)
        return self.kernel.fs.rename(src.parent, src.name, dst.parent, dst.name)

    def chmod(self, proc, path, mode):
        seq = self.kernel.begin_syscall(proc, "chmod", (path, mode))
        resolved = self._walk(proc, path, "chmod", seq, follow_final=True)
        inode = resolved.inode
        if proc.creds.euid not in (0, inode.uid):
            raise errors.EPERM("chmod by non-owner")
        op = Op.SOCKET_SETATTR if inode.itype is FileType.SOCK else Op.FILE_SETATTR
        self._final_op(proc, op, inode, resolved.path, "chmod", seq, args=(path, mode))
        return self.kernel.fs.chmod(inode, mode)

    def chown(self, proc, path, uid, gid=None):
        seq = self.kernel.begin_syscall(proc, "chown", (path, uid))
        resolved = self._walk(proc, path, "chown", seq, follow_final=True)
        if proc.creds.euid != 0:
            raise errors.EPERM("chown requires root")
        self._final_op(proc, Op.FILE_SETATTR, resolved.inode, resolved.path, "chown", seq, args=(path, uid))
        return self.kernel.fs.chown(resolved.inode, uid, gid)

    def listdir(self, proc, path):
        seq = self.kernel.begin_syscall(proc, "getdents", (path,))
        resolved = self._walk(proc, path, "getdents", seq, follow_final=True)
        dac_check(proc.creds, resolved.inode, "r")
        self._final_op(proc, Op.DIR_SEARCH, resolved.inode, resolved.path, "getdents", seq, args=(path,))
        return self.kernel.fs.list_dir(resolved.inode)

    def chdir(self, proc, path):
        seq = self.kernel.begin_syscall(proc, "chdir", (path,))
        resolved = self._walk(proc, path, "chdir", seq, follow_final=True)
        if not resolved.inode.is_dir:
            raise errors.ENOTDIR(path)
        dac_check(proc.creds, resolved.inode, "x")
        proc.cwd = resolved.inode
        return resolved.inode

    # ------------------------------------------------------------------
    # sockets (UNIX domain)
    # ------------------------------------------------------------------

    def bind(self, proc, path, mode=0o755, label=None):
        """Bind a UNIX socket at ``path`` (creates the socket inode)."""
        seq = self.kernel.begin_syscall(proc, "bind", (path,))
        resolved = self._walk(proc, path, "bind", seq, want_parent=True)
        if resolved.inode is not None:
            raise errors.EADDRINUSE(resolved.path)
        dac_check(proc.creds, resolved.parent, "w")
        inode = self.kernel.fs.create(
            resolved.parent,
            resolved.name,
            FileType.SOCK,
            uid=proc.creds.euid,
            gid=proc.creds.egid,
            mode=mode,
            label=label,
        )
        inode.bound_socket = proc.pid
        self._final_op(proc, Op.SOCKET_BIND, inode, resolved.path, "bind", seq, args=(path,))
        return inode

    def connect(self, proc, path):
        """Connect to a bound UNIX socket; returns the listener's pid.

        A missing path surfaces as ``ECONNREFUSED`` (folding POSIX's
        ENOENT case in, since callers react identically).
        """
        seq = self.kernel.begin_syscall(proc, "connect", (path,))
        try:
            resolved = self._walk(proc, path, "connect", seq, follow_final=True)
        except errors.ENOENT:
            raise errors.ECONNREFUSED(path)
        inode = resolved.inode
        if inode is None or inode.itype is not FileType.SOCK:
            raise errors.ECONNREFUSED(path)
        if inode.bound_socket is None:
            raise errors.ECONNREFUSED(path)
        self._final_op(
            proc, Op.UNIX_STREAM_SOCKET_CONNECT, inode, resolved.path, "connect", seq, args=(path,)
        )
        return inode.bound_socket

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------

    def fork(self, proc):
        """Fork; returns the child process object."""
        self.kernel.begin_syscall(proc, "fork")
        kernel = self.kernel
        child = Process(
            kernel._next_pid,
            proc.comm,
            creds=proc.creds.copy(),
            label=proc.label,
            binary=proc.binary,
            cwd=proc.cwd,
            env=dict(proc.env),
            argv=list(proc.argv),
            ppid=proc.pid,
        )
        kernel._next_pid += 1
        child.images = list(proc.images)
        for frame in proc.stack.frames():
            child.stack.push(frame.pc, image=frame.image, function=frame.function)
        for fd, open_file in proc.fds.items():
            child.fds[fd] = open_file.dup()
        child._next_fd = proc._next_fd
        # fork(2) inheritance: creation mask, handlers, blocked set
        # (pending signals are NOT inherited — POSIX clears them).
        child.umask = getattr(proc, "umask", DEFAULT_UMASK)
        child.signals.dispositions = dict(proc.signals.dispositions)
        child.signals.blocked = set(proc.signals.blocked)
        # Firewall state: the whole bundle — STATE dictionary (rule
        # invariants set by the parent must keep protecting the forked
        # worker), negative-decision cache (its entries are pure
        # functions of rule base/label/program/entrypoint, all fork-
        # preserved), and context cache — inherits through the CoW
        # substrate: O(1) structural share, first writer on either side
        # pays the copy.  ``kernel.fork_state_mode = "eager"`` selects
        # the deep-copy baseline for benchmarks and differential tests.
        mode = kernel.fork_state_mode
        if mode not in ("cow", "eager"):
            raise ValueError("unknown fork_state_mode: {!r}".format(mode))
        child.pf = proc.pf.fork(eager=(mode == "eager"))
        kernel.processes[child.pid] = child
        return child

    def execve(self, proc, path, argv=None, env=None, interpreter=None):
        """Replace the process image; honours setuid/setgid bits."""
        seq = self.kernel.begin_syscall(proc, "execve", (path,))
        resolved = self._walk(proc, path, "execve", seq, follow_final=True)
        inode = resolved.inode
        self._final_op(proc, Op.FILE_EXEC, inode, resolved.path, "execve", seq, want="x", args=(path,))
        if inode.is_setuid:
            proc.creds.euid = inode.uid
        if inode.is_setgid:
            proc.creds.egid = inode.gid
        proc.binary = BinaryImage(resolved.path, interpreter=interpreter)
        proc.images = [proc.binary]
        proc.stack = type(proc.stack)()
        proc.script_stack = None
        # execve(2): caught handlers reset to default; the blocked set
        # AND the pending set survive the exec (POSIX: "signals set to
        # be caught shall be set to the default action ... pending
        # signals remain pending").
        blocked = set(proc.signals.blocked)
        pending = list(proc.signals.pending)
        proc.signals = sig.SignalState()
        proc.signals.blocked = blocked
        proc.signals.pending = pending
        proc.comm = posixpath.basename(resolved.path)
        if argv is not None:
            proc.argv = list(argv)
        if env is not None:
            proc.env = dict(env)
        proc.pf.execve_reset()
        return proc

    def exit(self, proc, code=0):
        self.kernel.begin_syscall(proc, "exit", (code,))
        for fd in list(proc.fds):
            proc.drop_fd(fd).close()
        proc.alive = False
        proc.exit_code = code
        self.kernel.reap(proc)

    def setuid(self, proc, uid):
        self.kernel.begin_syscall(proc, "setuid", (uid,))
        if proc.creds.euid == 0:
            proc.creds.uid = proc.creds.euid = uid
        elif uid == proc.creds.uid:
            proc.creds.euid = uid
        else:
            raise errors.EPERM("setuid({}) by uid {}".format(uid, proc.creds.uid))
        self.kernel.adversaries.register_uid(uid)
        return proc.creds

    def seteuid(self, proc, euid):
        self.kernel.begin_syscall(proc, "seteuid", (euid,))
        if proc.creds.uid == 0 or proc.creds.euid == 0 or euid == proc.creds.uid:
            proc.creds.euid = euid
        else:
            raise errors.EPERM("seteuid({}) by uid {}".format(euid, proc.creds.uid))
        return proc.creds

    def mmap(self, proc, fd, as_image=False):
        """Map an open file; with ``as_image`` it becomes a code mapping."""
        seq = self.kernel.begin_syscall(proc, "mmap", (fd,))
        open_file = proc.get_fd(fd)
        self._final_op(proc, Op.FILE_MMAP, open_file.inode, open_file.path, "mmap", seq, args=(fd,))
        if as_image:
            image = BinaryImage(open_file.path)
            proc.map_image(image)
            return image
        return open_file.inode.data

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------

    def sigaction(self, proc, signum, handler_pc=None, handler=None, sa_mask=frozenset()):
        """Install a handler; ``handler_pc`` is base-relative to the binary."""
        self.kernel.begin_syscall(proc, "sigaction", (signum,))
        if signum in sig.UNBLOCKABLE_SIGNALS:
            raise errors.EINVAL("cannot catch signal {}".format(signum))
        abs_pc = None
        if handler_pc is not None and proc.binary is not None:
            abs_pc = proc.binary.abs(handler_pc)
        elif handler_pc is not None:
            abs_pc = handler_pc
        proc.signals.set_handler(signum, handler_pc=abs_pc, handler=handler, sa_mask=sa_mask)

    def sigprocmask(self, proc, block=(), unblock=()):
        self.kernel.begin_syscall(proc, "sigprocmask")
        proc.signals.block(block)
        proc.signals.unblock(unblock)
        if unblock:
            self._flush_pending(proc)

    def kill(self, proc, pid, signum):
        """Send a signal.  Mediation runs in the *receiver's* context.

        The firewall protects the receiving process, so the operation's
        subject is the target: its stack, its ``STATE`` dictionary, and
        its handler table are what rules R9-R11 consult.
        """
        self.kernel.begin_syscall(proc, "kill", (pid, signum))
        target = self.kernel.get_process(pid)
        if proc.creds.euid not in (0, target.creds.uid, target.creds.euid):
            raise errors.EPERM("kill({}, {}) by uid {}".format(pid, signum, proc.creds.euid))
        self._deliver(proc, target, signum)

    def _deliver(self, sender, target, signum):
        disposition = target.signals.disposition(signum)
        if target.signals.is_blocked(signum):
            target.signals.pending.append((sender.pid if sender else 0, signum))
            return "blocked"
        operation = Operation(
            target,
            Op.PROCESS_SIGNAL_DELIVERY,
            obj=None,
            path="signal:{}".format(sig.SIGNAL_NAMES.get(signum, signum)),
            syscall="kill",
            args=(signum,),
        )
        operation.extra["signum"] = signum
        operation.extra["sender_pid"] = sender.pid if sender else 0
        operation.extra["disposition"] = disposition
        operation.extra["syscall_seq"] = self.kernel._syscall_seq
        self.kernel.mediate(operation)
        return self._run_disposition(target, signum, disposition)

    def _run_disposition(self, target, signum, disposition):
        if disposition.is_handled:
            target.signals.enter_handler(signum)
            if disposition.handler_pc is not None:
                image = target.image_for_pc(disposition.handler_pc)
                target.stack.push(disposition.handler_pc, image=image, function="sig{}_handler".format(signum))
            if disposition.handler is not None:
                try:
                    disposition.handler(target, signum)
                finally:
                    self.sigreturn(target)
            return "handled"
        if signum in _DEFAULT_FATAL:
            self.exit(target, code=128 + signum)
            return "killed"
        return "ignored"

    def sigreturn(self, proc):
        """Return from a signal handler (rule R12 watches this syscall)."""
        self.kernel.begin_syscall(proc, "sigreturn")
        if proc.signals.in_handler:
            proc.signals.leave_handler()
            if proc.stack.depth:
                top = proc.stack.top()
                if top is not None and top.function.startswith("sig"):
                    proc.stack.pop()
        self._flush_pending(proc)

    def _flush_pending(self, proc):
        deliverable = [
            (sender, signum) for sender, signum in proc.signals.pending if not proc.signals.is_blocked(signum)
        ]
        proc.signals.pending = [
            (sender, signum) for sender, signum in proc.signals.pending if proc.signals.is_blocked(signum)
        ]
        for sender_pid, signum in deliverable:
            sender = self.kernel.processes.get(sender_pid)
            self._deliver(sender, proc, signum)

    # ------------------------------------------------------------------
    # descriptor plumbing
    # ------------------------------------------------------------------

    def dup(self, proc, fd):
        """Duplicate a descriptor; both share one file description."""
        self.kernel.begin_syscall(proc, "dup", (fd,))
        open_file = proc.get_fd(fd)
        return proc.install_fd(open_file.dup())

    def dup2(self, proc, fd, newfd):
        """Duplicate onto a specific descriptor number, closing it first."""
        self.kernel.begin_syscall(proc, "dup2", (fd, newfd))
        open_file = proc.get_fd(fd)
        if newfd == fd:
            return newfd
        existing = proc.fds.pop(newfd, None)
        if existing is not None:
            existing.close()
        proc.fds[newfd] = open_file.dup()
        return newfd

    def lseek(self, proc, fd, offset, whence="set"):
        """Reposition the file offset ("set" / "cur" / "end")."""
        self.kernel.begin_syscall(proc, "lseek", (fd, offset, whence))
        open_file = proc.get_fd(fd)
        size = len(open_file.inode.data or b"")
        if whence == "set":
            new = offset
        elif whence == "cur":
            new = open_file.offset + offset
        elif whence == "end":
            new = size + offset
        else:
            raise errors.EINVAL("lseek whence {!r}".format(whence))
        if new < 0:
            raise errors.EINVAL("negative file offset")
        open_file.offset = new
        return new

    def ftruncate(self, proc, fd, length=0):
        seq = self.kernel.begin_syscall(proc, "ftruncate", (fd, length))
        open_file = proc.get_fd(fd)
        if not open_file.flags.wants_write:
            raise errors.EBADF("ftruncate on read-only descriptor")
        self._final_op(proc, Op.FILE_SETATTR, open_file.inode, open_file.path, "ftruncate", seq, args=(fd,))
        data = open_file.inode.data or b""
        if length <= len(data):
            open_file.inode.data = data[:length]
        else:
            open_file.inode.data = data + b"\x00" * (length - len(data))
        return length

    def umask(self, proc, mask):
        """Set the creation mask; returns the previous value."""
        self.kernel.begin_syscall(proc, "umask", (mask,))
        previous = getattr(proc, "umask", DEFAULT_UMASK)
        proc.umask = mask & 0o777
        return previous

    def mkfifo(self, proc, path, mode=0o644, label=None):
        """Create a FIFO (squattable IPC rendezvous, like sockets)."""
        seq = self.kernel.begin_syscall(proc, "mkfifo", (path,))
        resolved = self._walk(proc, path, "mkfifo", seq, want_parent=True)
        if resolved.inode is not None:
            raise errors.EEXIST(resolved.path)
        dac_check(proc.creds, resolved.parent, "w")
        self._final_op(proc, Op.DIR_WRITE, resolved.parent, posixpath.dirname(resolved.path) or "/", "mkfifo", seq)
        inode = self.kernel.fs.create(
            resolved.parent,
            resolved.name,
            FileType.FIFO,
            uid=proc.creds.euid,
            gid=proc.creds.egid,
            mode=mode & ~getattr(proc, "umask", DEFAULT_UMASK),
            label=label,
        )
        self._final_op(proc, Op.FILE_CREATE, inode, resolved.path, "mkfifo", seq)
        return inode

    # ------------------------------------------------------------------
    # trivial calls (benchmark fodder)
    # ------------------------------------------------------------------

    def getpid(self, proc):
        """The lmbench "null" syscall: pure entry/exit cost."""
        self.kernel.begin_syscall(proc, "getpid")
        return proc.pid

    def getuid(self, proc):
        self.kernel.begin_syscall(proc, "getuid")
        return proc.creds.uid
