"""Reproduction of "Process Firewalls: Protecting Processes During
Resource Access" (Vijayakumar, Schiffman, Jaeger — EuroSys 2013).

Public API tour:

- :class:`repro.kernel.Kernel` — the simulated OS (VFS, processes,
  DAC/MAC, LSM hooks).
- :class:`repro.firewall.ProcessFirewall` — the paper's contribution, an
  iptables-style rule engine over the system-call interface.
- :func:`repro.firewall.pftables` — install rules in the paper's rule
  language.
- :mod:`repro.attacks` — runnable resource-access attack scenarios
  (Table 2 classes and the E1-E9 exploits of Table 4).
- :mod:`repro.rulesets` — the shipped rules R1-R12 and generated rule
  bases.
- :mod:`repro.rulegen` — rule generation from logs, vulnerabilities and
  runtime traces (§6.3).
"""

__version__ = "1.0.0"

from repro.kernel import Kernel
from repro.firewall.engine import EngineConfig, ProcessFirewall

__all__ = ["Kernel", "EngineConfig", "ProcessFirewall", "__version__"]
