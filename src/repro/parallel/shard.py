"""Fork-lineage sharding of recorded syscall traces.

A shard must be replayable in isolation, so the partition unit is the
**lineage group**: a root process (recorded via ``trace.spawns``) plus
every descendant it forks, plus any lineage it touches through a
pid-carrying syscall (``kill``).  Grouping is a union-find over
recorded pids; assignment of groups to shards is deterministic (greedy
longest-group-first by default), and the resulting :class:`ShardPlan`
renders as a JSON manifest with a sha256 digest — two runs over the
same trace must produce identical manifests (pinned by the benchmark
harness's reproducibility test).
"""

from __future__ import annotations

import hashlib
import json

from repro.workloads.replay import _PID_ARGS

#: Group-to-shard assignment strategies accepted by :func:`plan_shards`.
STRATEGIES = ("greedy", "round_robin")


class _UnionFind:
    """Minimal union-find over recorded pids."""

    def __init__(self):
        self._parent = {}

    def find(self, pid):
        parent = self._parent
        root = parent.setdefault(pid, pid)
        while root != parent[root]:
            root = parent[root]
        while parent[pid] != root:  # path compression
            pid, parent[pid] = parent[pid], root
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic orientation: smaller pid wins the root slot.
            if rb < ra:
                ra, rb = rb, ra
            self._parent[rb] = ra


def lineage_groups(trace):
    """Partition a trace into independent fork-lineage groups.

    Returns groups in first-appearance order, each a dict with:

    - ``"pids"`` — every recorded pid in the lineage (sorted);
    - ``"roots"`` — the subset that appears in ``trace.spawns``
      (sorted), i.e. what :func:`repro.workloads.replay.spawn_recorded`
      must spawn for the group to replay;
    - ``"indices"`` — global entry indices belonging to the group
      (ascending), preserving the serial relative order within it.

    ``fork`` entries join child to parent; pid-carrying syscalls
    (``kill``) join sender to target, so a signal never crosses a
    shard boundary.
    """
    uf = _UnionFind()
    root_pids = [spec["pid"] for spec in trace.spawns]
    for pid in root_pids:
        uf.find(pid)
    for pid, method, args, _kwargs, child_pid in trace.entries:
        uf.find(pid)
        if method == "fork" and child_pid is not None:
            uf.union(pid, child_pid)
        pid_index = _PID_ARGS.get(method)
        if pid_index is not None and pid_index < len(args):
            uf.union(pid, args[pid_index])
    by_root = {}
    order = []

    def bucket(pid):
        root = uf.find(pid)
        group = by_root.get(root)
        if group is None:
            group = by_root[root] = {"pids": set(), "roots": [], "indices": []}
            order.append(root)
        group["pids"].add(pid)
        return group

    for pid in root_pids:
        bucket(pid)["roots"].append(pid)
    for index, entry in enumerate(trace.entries):
        group = bucket(entry[0])
        group["indices"].append(index)
        if entry[1] == "fork" and entry[4] is not None:
            group["pids"].add(entry[4])
    return [
        {
            "pids": sorted(by_root[root]["pids"]),
            "roots": sorted(by_root[root]["roots"]),
            "indices": by_root[root]["indices"],
        }
        for root in order
    ]


class ShardPlan:
    """A deterministic assignment of lineage groups to worker shards.

    ``shards`` is a list (one slot per worker, possibly empty) of
    dicts carrying the union of the assigned groups' ``pids`` /
    ``roots`` / ``indices``.  The plan's :meth:`manifest` is the
    reproducibility contract: it contains everything needed to audit
    which worker replayed what, plus a sha256 :meth:`digest` over the
    canonical JSON rendering.
    """

    def __init__(self, workers, strategy, shards, total_entries):
        self.workers = workers
        self.strategy = strategy
        self.shards = shards
        self.total_entries = total_entries

    def manifest(self):
        """JSON-ready description of the plan, digest included."""
        body = {
            "workers": self.workers,
            "strategy": self.strategy,
            "total_entries": self.total_entries,
            "shards": [
                {
                    "worker": index,
                    "roots": shard["roots"],
                    "pids": shard["pids"],
                    "entries": len(shard["indices"]),
                    "first_index": shard["indices"][0] if shard["indices"] else None,
                }
                for index, shard in enumerate(self.shards)
            ],
        }
        body["digest"] = _digest(body)
        return body

    def digest(self):
        """sha256 hex digest of the canonical manifest body."""
        return self.manifest()["digest"]


def _digest(body):
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def plan_shards(trace, workers, strategy="greedy"):
    """Assign a trace's lineage groups to ``workers`` shards.

    Strategies (both deterministic for a given trace):

    - ``"greedy"`` — groups sorted by descending entry count (ties by
      first appearance) land on the currently lightest shard: balanced
      load, the benchmarking default;
    - ``"round_robin"`` — groups in appearance order, shard ``i %
      workers``: predictable placement for tests.

    Groups are never split; ``workers`` may exceed the group count, in
    which case the surplus shards stay empty (and the driver skips
    spawning workers for them).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if strategy not in STRATEGIES:
        raise ValueError("unknown shard strategy {!r} (expected one of {})".format(
            strategy, "/".join(STRATEGIES)))
    groups = lineage_groups(trace)
    shards = [{"pids": set(), "roots": [], "indices": []} for _ in range(workers)]
    loads = [0] * workers
    if strategy == "round_robin":
        assignment = [(i % workers, group) for i, group in enumerate(groups)]
    else:
        ordered = sorted(
            enumerate(groups),
            key=lambda item: (-len(item[1]["indices"]), item[0]),
        )
        assignment = []
        for _, group in ordered:
            target = min(range(workers), key=lambda w: (loads[w], w))
            loads[target] += len(group["indices"])
            assignment.append((target, group))
    for target, group in assignment:
        shard = shards[target]
        shard["pids"].update(group["pids"])
        shard["roots"].extend(group["roots"])
        shard["indices"].extend(group["indices"])
    for shard in shards:
        shard["pids"] = sorted(shard["pids"])
        shard["roots"] = sorted(shard["roots"])
        shard["indices"].sort()
    return ShardPlan(workers, strategy, shards, len(trace.entries))
