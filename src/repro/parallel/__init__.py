"""Sharded multi-worker replay of recorded macro workloads.

The paper's macrobenchmarks (§6.3, Table 7) replay serially through
one kernel; this package adds the horizontal axis.  A recorded trace
(:mod:`repro.workloads.replay`) is partitioned into **fork-lineage
shards** (:mod:`~repro.parallel.shard`) — every process in a lineage
lands in the same shard, so per-process firewall state (context cache,
decision cache, traversal stack) never straddles a shard boundary.
Each shard replays inside its own OS worker process
(:mod:`~repro.parallel.worker`), against a freshly built world and a
firewall reconstructed from one serialized rule base
(``firewall/persist`` text shipped in the worker payload).  Workers
return picklable snapshots — verdict streams, ``EngineStats`` dicts,
Prometheus-text metrics, audit records tagged with worker id and
logical clock — which :mod:`~repro.parallel.merge` folds back together
order-independently.  :mod:`~repro.parallel.driver` orchestrates the
whole run and is what ``pfctl bench-scale`` and the differential suite
call; :mod:`~repro.parallel.batch` holds the in-process helpers that
feed recorded mediation streams through ``engine.mediate_batch``.
"""

from repro.parallel.batch import record_mediations, replay_mediations
from repro.parallel.driver import replay_serial, replay_sharded
from repro.parallel.merge import merge_snapshots, strip_volatile
from repro.parallel.shard import ShardPlan, lineage_groups, plan_shards

__all__ = [
    "ShardPlan",
    "lineage_groups",
    "merge_snapshots",
    "plan_shards",
    "record_mediations",
    "replay_mediations",
    "replay_serial",
    "replay_sharded",
    "strip_volatile",
]
