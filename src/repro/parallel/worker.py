"""Shard-replay worker: the code that runs inside each OS process.

Everything here is importable at module level because workers start
under the ``multiprocessing`` **spawn** context (a fresh interpreter
that re-imports the entry point by name — closures and ``__main__``
lambdas would not survive the trip).  A worker receives one picklable
payload dict, assembles its whole mediation stack through the
:class:`repro.api.Session` facade (world builders resolve by name from
``repro.api.WORLD_BUILDERS``; rules restore from serialized
``firewall/persist`` text), spawns its shard's recorded root
processes, and replays the shard's entries
through :func:`repro.workloads.replay.apply_entry` — the exact
per-entry semantics of a serial :func:`~repro.workloads.replay.replay`.

The returned snapshot is fully picklable: verdict stream keyed by
**global** entry index, ``EngineStats`` as a dict, metrics as
Prometheus text, and audit records tagged ``(worker, lclock, sub)``
where ``lclock`` is the global trace index of the entry that emitted
them — the merge step interleaves shards back into serial order by
that logical clock.  Timing separates ``setup_s`` (world build, rule
restore, spawns) from the replay loop's ``wall_s``/``cpu_s``; scaling
efficiency is computed from the loop only.
"""

from __future__ import annotations

import pickle
import time
import traceback

from repro.api import Session, resolve_engine
from repro.firewall.engine import ProcessFirewall
from repro.firewall.persist import load_rules, save_rules
from repro.obs.audit import severity_name
from repro.workloads.replay import Trace, apply_entry, spawn_recorded


def _normalize_pid(record, live_to_recorded):
    """Copy an audit payload, rewriting the live pid to the recorded
    one so records are comparable across worlds with different pid
    assignment.  Unknown pids (none expected) pass through unchanged."""
    out = dict(record)
    pid = out.get("pid")
    if pid in live_to_recorded:
        out["pid"] = live_to_recorded[pid]
    return out


def run_shard(payload):
    """Replay one shard; returns the picklable result snapshot.

    Payload keys: ``trace_json``, ``indices`` (global entry indices,
    ascending), ``roots`` (recorded root pids to spawn), ``rules_text``
    (``save_rules`` output), ``config`` (engine preset name),
    ``world`` = ``(builder name, kwargs)``, ``worker_id``, ``metered``
    (enable the metrics registry), ``collect_audit``.

    Runs inline in the calling process when the driver is in inline
    mode — the OS-process path (:func:`worker_entry`) is the same code.
    """
    setup_start = time.perf_counter()
    session = Session(
        engine=payload.get("config", "JITTED"),
        rules=payload["rules_text"],
        world=payload.get("world", ("standard", {})),
        metered=bool(payload.get("metered")),
        kernel_audit=False,
    )
    kernel, firewall = session.kernel, session.firewall
    trace = Trace.from_json(payload["trace_json"])
    entries = trace.entries
    indices = payload["indices"]
    proc_map = spawn_recorded(kernel, trace, pids=set(payload["roots"]))
    live_to_recorded = {proc.pid: rpid for rpid, proc in proc_map.items()}
    setup_s = time.perf_counter() - setup_start

    worker_id = payload.get("worker_id", 0)
    collect_audit = payload.get("collect_audit", True)
    ring = firewall.audit
    verdicts = []
    audit = []
    executed = 0
    failures = []
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    for gidx in indices:
        entry = entries[gidx]
        before = ring.next_seq()
        status, value = apply_entry(kernel, proc_map, entry)
        if status == "ok":
            executed += 1
            if entry[1] == "fork" and entry[4] is not None:
                live_to_recorded[value.pid] = entry[4]
        elif status != "skipped":
            failures.append((gidx, entry[1], status))
        verdicts.append((gidx, entry[1], status))
        emitted = ring.next_seq() - before
        if collect_audit and emitted:
            for sub, audit_entry in enumerate(ring.tail(emitted)):
                audit.append({
                    "worker": worker_id,
                    "lclock": gidx,
                    "sub": sub,
                    "severity": severity_name(audit_entry.severity),
                    "kind": audit_entry.kind,
                    "record": _normalize_pid(audit_entry.record, live_to_recorded),
                })
    cpu_s = time.process_time() - cpu_start
    wall_s = time.perf_counter() - wall_start
    return {
        "worker_id": worker_id,
        "entries": len(indices),
        "executed": executed,
        "failures": failures,
        "verdicts": verdicts,
        "stats": firewall.stats.as_dict(),
        "metrics_prom": firewall.metrics.to_prometheus() if payload.get("metered") else None,
        "audit": audit,
        "setup_s": setup_s,
        "wall_s": wall_s,
        "cpu_s": cpu_s,
    }


def worker_entry(conn, payload):
    """OS-process entry point: run the shard, ship the result back.

    Sends ``("ok", snapshot)`` or ``("error", traceback text)`` over
    ``conn`` and closes it — the driver re-raises worker errors with
    the child traceback attached.
    """
    try:
        result = ("ok", run_shard(payload))
    except BaseException:
        result = ("error", traceback.format_exc())
    try:
        conn.send(result)
    finally:
        conn.close()


def describe_rules_in_child(conn, payload):
    """Spawn-boundary probe used by the persistence round-trip tests.

    Reconstructs a firewall in the child from ``payload`` — either
    ``pickled_rules`` (a pickled ``RuleBase``) or ``rules_text``
    (``save_rules`` output) — and reports what the child actually
    sees: the rule-base stamp, per-table chain order with rendered
    rule text, the re-serialized ``save_rules`` text, and whether JIT
    codegen rebuilds cleanly against the transported rules.
    """
    try:
        firewall = ProcessFirewall(resolve_engine(payload.get("config", "JITTED")))
        if payload.get("pickled_rules") is not None:
            firewall.rules = pickle.loads(payload["pickled_rules"])
        else:
            load_rules(firewall, payload["rules_text"])
        chains = {}
        for table_name, table in firewall.rules.tables.items():
            chains[table_name] = [
                (chain_name, [rule.render() for rule in table.chains[chain_name]])
                for chain_name in table.chains
            ]
        jit = firewall.jit_program()
        result = ("ok", {
            "stamp": tuple(firewall.rules.stamp),
            "chains": chains,
            "rules_text": save_rules(firewall),
            "jit_rebuilt": jit is not None and jit.stamp is firewall.rules.stamp,
        })
    except BaseException:
        result = ("error", traceback.format_exc())
    try:
        conn.send(result)
    finally:
        conn.close()
