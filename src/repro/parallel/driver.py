"""The sharded-replay orchestrator: serial reference and N-worker runs.

:func:`replay_serial` and :func:`replay_sharded` both route every
entry through :func:`repro.parallel.worker.run_shard`, so the serial
reference is literally the one-shard case of the same code — any
verdict divergence between them is a sharding bug, not a harness
artifact.  Sharded runs support two execution modes:

- ``inline=True`` — shards run sequentially in this process (fast,
  exercises sharding + merge logic; what most tests use);
- ``inline=False`` — one OS process per non-empty shard under the
  ``multiprocessing`` **spawn** context, rule base shipped as
  ``firewall/persist`` text in the payload (the production path; the
  CI smoke job and benchmark run this for real).

Scaling numbers report two bases: ``throughput_wall`` (records over
the slowest worker's replay-loop wall time) and ``throughput_cpu``
(sum over workers of records / per-worker **CPU** time, measured by
``time.process_time`` around the replay loop only).  On a
many-core host the two track each other; on a core-starved host only
the CPU basis reflects the per-worker efficiency the sharding buys,
so ``BENCH_macro_scale.json`` labels every figure with its basis.
"""

from __future__ import annotations

import multiprocessing

from repro.parallel.merge import merge_snapshots
from repro.parallel.shard import plan_shards
from repro.parallel.worker import run_shard, worker_entry


def _payload(trace_json, shard, worker_id, rules_text, config, world,
             metered, collect_audit):
    return {
        "trace_json": trace_json,
        "indices": shard["indices"],
        "roots": shard["roots"],
        "rules_text": rules_text,
        "config": config,
        "world": world,
        "worker_id": worker_id,
        "metered": metered,
        "collect_audit": collect_audit,
    }


def _aggregate(snapshots):
    """Throughput figures for one run, on both timing bases."""
    records = sum(snap["entries"] for snap in snapshots)
    wall = max((snap["wall_s"] for snap in snapshots), default=0.0)
    cpu_throughput = sum(
        snap["entries"] / max(snap["cpu_s"], 1e-9) for snap in snapshots
    )
    return {
        "records": records,
        "wall_s": wall,
        "cpu_s": sum(snap["cpu_s"] for snap in snapshots),
        "setup_s": sum(snap["setup_s"] for snap in snapshots),
        "throughput_wall": records / max(wall, 1e-9),
        "throughput_cpu": cpu_throughput,
    }


def replay_serial(trace, rules_text, config="JITTED", metered=False,
                  collect_audit=True, world=("standard", {})):
    """Replay the whole trace as one inline shard (the reference run).

    Returns the same result shape as :func:`replay_sharded` with
    ``workers == 1``: ``{"merged", "snapshots", "aggregate", "mode"}``.
    """
    shard = {
        "indices": list(range(len(trace.entries))),
        "roots": sorted(spec["pid"] for spec in trace.spawns),
    }
    snapshot = run_shard(_payload(
        trace.to_json(), shard, 0, rules_text, config, world,
        metered, collect_audit))
    return {
        "mode": "serial",
        "snapshots": [snapshot],
        "merged": merge_snapshots([snapshot]),
        "aggregate": _aggregate([snapshot]),
        "plan": None,
    }


def replay_sharded(trace, rules_text, workers=2, config="JITTED",
                   inline=False, metered=False, collect_audit=True,
                   world=("standard", {}), strategy="greedy"):
    """Replay the trace sharded across ``workers`` worker processes.

    Empty shards (more workers than lineage groups) are skipped.
    Worker failures in spawn mode raise ``RuntimeError`` carrying the
    child traceback.  Returns ``{"mode", "plan", "snapshots",
    "merged", "aggregate"}`` where ``merged`` is the
    :func:`~repro.parallel.merge.merge_snapshots` serial-shaped view.
    """
    plan = plan_shards(trace, workers, strategy=strategy)
    trace_json = trace.to_json()
    payloads = [
        _payload(trace_json, shard, worker_id, rules_text, config, world,
                 metered, collect_audit)
        for worker_id, shard in enumerate(plan.shards)
        if shard["indices"]
    ]
    if inline:
        snapshots = [run_shard(payload) for payload in payloads]
    else:
        snapshots = _run_spawned(payloads)
    return {
        "mode": "inline" if inline else "spawn",
        "plan": plan.manifest(),
        "snapshots": snapshots,
        "merged": merge_snapshots(snapshots),
        "aggregate": _aggregate(snapshots),
    }


def _run_spawned(payloads):
    """Run one spawn-context OS process per payload; gather snapshots."""
    ctx = multiprocessing.get_context("spawn")
    children = []
    for payload in payloads:
        receiver, sender = ctx.Pipe(duplex=False)
        process = ctx.Process(target=worker_entry, args=(sender, payload))
        process.start()
        sender.close()  # keep only the child's handle to the send end
        children.append((process, receiver, payload["worker_id"]))
    snapshots = []
    errors = []
    for process, receiver, worker_id in children:
        try:
            kind, value = receiver.recv()
        except EOFError:
            kind, value = "error", "worker {} exited without reporting".format(worker_id)
        process.join()
        receiver.close()
        if kind == "ok":
            snapshots.append(value)
        else:
            errors.append("worker {}:\n{}".format(worker_id, value))
    if errors:
        raise RuntimeError("sharded replay worker failure\n" + "\n".join(errors))
    return snapshots
