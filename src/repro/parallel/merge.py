"""Folding per-shard worker snapshots back into one serial-shaped view.

Merging is pure addition and sorting, so it is associative and
order-independent: stats via ``EngineStats.merge``, metrics via
``MetricsRegistry.merge`` (snapshots travel as Prometheus text and are
parsed back), verdict streams and audit records re-interleaved by
global trace index — the ``lclock`` each worker stamped on them.

Two comparison helpers encode what "identical to serial" means:

- :func:`strip_volatile` removes per-run fields from audit payloads
  (``time`` is a wall-clock stamp; ``resource_id`` is an inode number,
  and inodes allocated for files *created during replay* differ
  between worlds even when the files are the same);
- :data:`SHARD_VARIANT_STATS` / :data:`SHARD_VARIANT_METRIC_PREFIXES`
  name the counters that legitimately differ under sharding with the
  resource-context cache on: the rescache is per-world and per-inode,
  so paths shared *across* lineages (``/bin/sh``, ``/etc``) hit a warm
  entry in the serial world but miss once per worker world.  Every
  per-process counter (decision cache, context cache) is lineage-local
  and must match exactly; COMPILED configurations (no rescache) admit
  full stats/metrics equality.
"""

from __future__ import annotations

from repro.firewall.engine import EngineStats
from repro.obs.metrics import parse_prometheus, registry_from_prometheus

#: ``EngineStats`` fields allowed to differ between a sharded JITTED
#: run and its serial reference (rescache locality; see module doc).
SHARD_VARIANT_STATS = (
    "context_cost",
    "cache_hits",
    "rescache_hits",
    "rescache_misses",
    "rescache_invalidations",
    "context_collections",
)

#: Metric families allowed to differ for the same reason, plus phase
#: timers (wall-clock by construction).
SHARD_VARIANT_METRIC_PREFIXES = (
    "pf_rescache_total",
    "pf_context_collections_total",
    "pf_context_cache_hits_total",
    "pf_phase_",
)

#: Audit-payload fields that are per-run, not per-decision.
VOLATILE_AUDIT_FIELDS = ("time", "resource_id")


def strip_volatile(record, fields=VOLATILE_AUDIT_FIELDS):
    """Copy an audit payload without its per-run fields."""
    return {key: value for key, value in record.items() if key not in fields}


def comparable_stats(stats_dict, exclude=()):
    """An ``EngineStats.as_dict`` snapshot minus excluded fields."""
    return {key: value for key, value in stats_dict.items() if key not in exclude}


def comparable_metrics(prom_text, exclude_prefixes=()):
    """Parsed Prometheus counters minus excluded families.

    Returns ``{(name, labels): value}`` with every series whose name
    starts with one of ``exclude_prefixes`` removed — the shape two
    runs are compared by.
    """
    out = {}
    for (name, labels), value in parse_prometheus(prom_text).items():
        if any(name.startswith(prefix) for prefix in exclude_prefixes):
            continue
        out[(name, labels)] = value
    return out


def merge_snapshots(snapshots):
    """Fold worker snapshots into one serial-shaped result dict.

    Input order does not matter: verdicts and failures sort by global
    entry index, audit records by ``(lclock, sub)`` (each worker's
    records carry the global index of the entry that emitted them, and
    lineage disjointness guarantees no two workers share an index).
    Stats and metrics merge by counter addition.  Returns::

        {"verdicts": [(gidx, method, status), ...],   # serial order
         "executed": int, "failures": [...],
         "stats": EngineStats-as-dict,
         "metrics_prom": text or None,
         "audit": [tagged records, serial order],
         "workers": [per-worker timing/size rows]}
    """
    stats = EngineStats()
    metrics = None
    verdicts = []
    failures = []
    audit = []
    executed = 0
    workers = []
    for snap in snapshots:
        stats.merge(snap["stats"])
        if snap.get("metrics_prom"):
            shard_registry = registry_from_prometheus(snap["metrics_prom"])
            if metrics is None:
                metrics = shard_registry
            else:
                metrics.merge(shard_registry)
        verdicts.extend(snap["verdicts"])
        failures.extend(snap["failures"])
        audit.extend(snap["audit"])
        executed += snap["executed"]
        workers.append({
            "worker_id": snap["worker_id"],
            "entries": snap["entries"],
            "setup_s": snap["setup_s"],
            "wall_s": snap["wall_s"],
            "cpu_s": snap["cpu_s"],
        })
    verdicts.sort(key=lambda row: row[0])
    failures.sort(key=lambda row: row[0])
    audit.sort(key=lambda row: (row["lclock"], row["sub"]))
    workers.sort(key=lambda row: row["worker_id"])
    return {
        "verdicts": verdicts,
        "executed": executed,
        "failures": failures,
        "stats": stats.as_dict(),
        "metrics_prom": metrics.to_prometheus() if metrics is not None else None,
        "audit": audit,
        "workers": workers,
    }
