"""In-process helpers feeding recorded mediation streams to the engine.

``engine.mediate_batch`` wants a list of :class:`Operation` objects,
but operations hold live processes and inodes — they cannot cross a
process boundary.  So the batched fast path is exercised in-process:
:func:`record_mediations` captures the exact operation stream a
workload pushes through a firewall (verdicts included, denials
re-raised untouched), and :func:`replay_mediations` re-runs a captured
stream through either the per-call loop or ``mediate_batch`` — the
differential suite asserts the two are byte-identical, and the scale
benchmark times them against each other.

:func:`reset_mediation_state` zeroes the observable and cached
per-run state (stats, audit, metrics, per-process firewall caches) so
back-to-back passes over the same live world start from the same
place; without it the second pass would inherit the first pass's warm
decision cache and diverge in stats.
"""

from __future__ import annotations

import contextlib

from repro import errors


@contextlib.contextmanager
def record_mediations(firewall):
    """Capture every operation mediated by ``firewall`` inside the block.

    Yields the list the operations accumulate into, in mediation
    order.  Denied operations are captured too (the denial re-raises
    to the caller unchanged — recording must not alter behavior).
    Shadows the instance's ``mediate`` attribute and restores the
    previous state on exit, so nesting and pre-shadowed instances are
    handled.
    """
    captured = []
    previous = firewall.__dict__.get("mediate")
    original = firewall.mediate

    def recording_mediate(operation):
        captured.append(operation)
        return original(operation)

    firewall.mediate = recording_mediate
    try:
        yield captured
    finally:
        if previous is None:
            del firewall.mediate
        else:
            firewall.mediate = previous


def reset_mediation_state(firewall):
    """Reset observable state and per-process caches before a re-run.

    Clears the firewall's stats, audit ring, and metrics values, and
    drops every process's firewall-private caches (context cache,
    decision cache) in the attached kernel — rule state, VFS state,
    and process credentials are untouched, so a captured operation
    stream replays against the same inputs the original run saw.
    """
    firewall.stats.reset()
    firewall.audit.clear()
    firewall.metrics.reset()
    if firewall.kernel is not None:
        for proc in firewall.kernel.processes.values():
            proc.pf.context_cache = None
            proc.pf.decision_invalidate()


def replay_mediations(firewall, operations, batched=True):
    """Push a captured operation stream back through ``firewall``.

    Returns the verdict list (``"allow"``/``"drop"`` per operation).
    ``batched=True`` routes through ``mediate_batch``; ``False`` runs
    the reference per-call loop whose observable behavior
    ``mediate_batch`` must reproduce exactly.
    """
    if batched:
        return firewall.mediate_batch(operations)
    verdicts = []
    for operation in operations:
        try:
            firewall.mediate(operation)
        except errors.PFDenied:
            verdicts.append("drop")
        else:
            verdicts.append("allow")
    return verdicts
