"""Deterministic cooperative scheduling.

TOCTTOU and signal races are *interleaving* properties.  To make them
first-class and reproducible, programs can run as generator *threadlets*
that yield between syscalls; the :class:`repro.sched.scheduler.Scheduler`
interleaves them under a chosen policy (round-robin, scripted, or
seeded-random), so a test can express "the adversary runs exactly
between the victim's lstat and open" — or search interleavings with
hypothesis.
"""

from repro.sched.explore import Execution, explore_interleavings, outcome_set
from repro.sched.scheduler import Scheduler, Threadlet

__all__ = ["Scheduler", "Threadlet", "Execution", "explore_interleavings", "outcome_set"]
