"""Generator-threadlet scheduler.

A threadlet body is a Python generator that performs simulated syscalls
and ``yield``\\ s at every preemption point (typically between
syscalls).  The scheduler repeatedly picks a runnable threadlet and
advances it one step.  Policies:

- ``"round-robin"`` — fair alternation (default);
- ``"scripted"`` — an explicit list of threadlet names giving the exact
  interleaving, e.g. ``["victim", "adversary", "victim"]`` to fire an
  attack inside a race window;
- ``"random"`` — seeded pseudo-random choice, for interleaving search.

A threadlet that raises stops with ``error`` set; other threadlets keep
running (like independent processes).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro import errors


class Threadlet:
    """One schedulable activity.

    Attributes:
        name: identifier used by scripted schedules.
        gen: the generator being driven.
        done: the threadlet ran to completion.
        error: exception that terminated it, if any.
        result: ``StopIteration`` value when finished normally.
        steps: preemption points executed so far.
    """

    def __init__(self, name, gen):
        self.name = name
        self.gen = gen
        self.done = False
        self.error = None  # type: Optional[BaseException]
        self.result = None
        self.steps = 0

    @property
    def runnable(self):
        return not self.done

    def step(self):
        """Advance to the next yield; record completion or failure."""
        if self.done:
            raise errors.EINVAL("stepping finished threadlet {!r}".format(self.name))
        self.steps += 1
        try:
            next(self.gen)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
        except errors.KernelError as exc:
            self.done = True
            self.error = exc

    def __repr__(self):  # pragma: no cover - debugging aid
        state = "done" if self.done else "runnable"
        return "<Threadlet {} {} steps={}>".format(self.name, state, self.steps)


class Scheduler:
    """Interleaves threadlets deterministically."""

    def __init__(self, policy="round-robin", script=None, seed=0):
        self.policy = policy
        self.script = list(script or [])
        self._rng = random.Random(seed)
        self.threadlets = []  # type: List[Threadlet]
        self.trace = []  # names in execution order, for assertions

    def add(self, name, gen_or_fn, *args, **kwargs):
        """Register a threadlet from a generator or generator function."""
        gen = gen_or_fn(*args, **kwargs) if callable(gen_or_fn) else gen_or_fn
        threadlet = Threadlet(name, gen)
        self.threadlets.append(threadlet)
        return threadlet

    def get(self, name):
        for threadlet in self.threadlets:
            if threadlet.name == name:
                return threadlet
        raise errors.EINVAL("no threadlet {!r}".format(name))

    def _pick(self, runnable):
        if self.policy == "scripted":
            while self.script:
                name = self.script.pop(0)
                for threadlet in runnable:
                    if threadlet.name == name:
                        return threadlet
                # Scripted entry refers to a finished threadlet: skip it.
            # Script exhausted: drain remaining work round-robin.
            return runnable[0]
        if self.policy == "random":
            return self._rng.choice(runnable)
        # round-robin: least-stepped first, stable by insertion order.
        return min(runnable, key=lambda t: t.steps)

    def run(self, max_steps=100000):
        """Drive all threadlets to completion; returns the trace."""
        steps = 0
        while True:
            runnable = [t for t in self.threadlets if t.runnable]
            if not runnable:
                return self.trace
            if steps >= max_steps:
                raise errors.EINVAL("scheduler exceeded {} steps".format(max_steps))
            threadlet = self._pick(runnable)
            self.trace.append(threadlet.name)
            threadlet.step()
            steps += 1

    def errors(self):
        return {t.name: t.error for t in self.threadlets if t.error is not None}

    def results(self):
        return {t.name: t.result for t in self.threadlets if t.done and t.error is None}
