"""Exhaustive interleaving exploration (bounded model checking).

Random schedules (the hypothesis tests) give probabilistic confidence;
for small victim/adversary pairs we can do better and enumerate *every*
interleaving.  :func:`explore_interleavings` drives a fresh world per
schedule, extending partial schedules depth-first until all complete
executions have been visited, and returns the outcome of each.

The TOCTTOU verification statement this enables: *under every possible
schedule*, the protected system never reaches the attack goal — while
the unprotected system provably has both winning and losing schedules
(it really is a race).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro import errors
from repro.sched.scheduler import Scheduler


class Execution:
    """One complete interleaving and its outcome.

    Attributes:
        schedule: the threadlet names in execution order.
        outcome: whatever the scenario's ``outcome_fn`` returned.
        errors: name -> terminating KernelError, for failed threadlets.
    """

    __slots__ = ("schedule", "outcome", "errors")

    def __init__(self, schedule, outcome, errs):
        self.schedule = tuple(schedule)
        self.outcome = outcome
        self.errors = dict(errs)

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<Execution {} -> {!r}>".format("/".join(self.schedule), self.outcome)


def _run_prefix(factory, prefix):
    """Run a fresh instance following ``prefix``, then report state.

    Returns ``(runnable_names, finished, scheduler, outcome_fn)`` where
    ``runnable_names`` is what could run next after the prefix.
    """
    threadlets, outcome_fn = factory()
    sched = Scheduler(policy="scripted", script=[])
    for name, gen in threadlets:
        sched.add(name, gen)
    for name in prefix:
        threadlet = sched.get(name)
        if not threadlet.runnable:
            raise errors.EINVAL("schedule prefix steps a finished threadlet")
        sched.trace.append(name)
        threadlet.step()
    runnable = [t.name for t in sched.threadlets if t.runnable]
    return runnable, sched, outcome_fn


def explore_interleavings(factory, max_executions=10000):
    """Enumerate every interleaving of the factory's threadlets.

    Args:
        factory: zero-argument callable returning
            ``([(name, generator), ...], outcome_fn)`` over a **fresh**
            world; ``outcome_fn(scheduler)`` summarizes the end state.
        max_executions: safety bound on complete executions.

    Returns:
        A list of :class:`Execution`, one per complete interleaving.
    """
    executions = []  # type: List[Execution]
    stack = [()]  # partial schedules, DFS
    while stack:
        prefix = stack.pop()
        runnable, sched, outcome_fn = _run_prefix(factory, prefix)
        if not runnable:
            errs = {t.name: t.error for t in sched.threadlets if t.error is not None}
            executions.append(Execution(prefix, outcome_fn(sched), errs))
            if len(executions) >= max_executions:
                raise errors.EINVAL(
                    "interleaving space exceeds {} executions".format(max_executions)
                )
            continue
        for name in reversed(runnable):
            stack.append(prefix + (name,))
    return executions


def outcome_set(executions):
    """Distinct outcomes over all executions."""
    return {execution.outcome for execution in executions}
