"""One deprecation path for every compat shim.

Historically each compatibility surface (the ``Process.pf_*``
attribute views, the engine's ``log_records`` list view) was silent:
callers could not tell they were on a shim, and the shims could never
be removed.  This module gives them a single exit ramp:

- :func:`warn_once` emits **one** :class:`DeprecationWarning` per shim
  per interpreter, always naming the facade-era replacement, so a busy
  replay loop touching a shim millions of times warns exactly once;
- the removal schedule lives in ``docs/INTERNALS.md`` ("Compat shims
  and their removal plan"), not scattered through docstrings.

Tests that assert on the warning call :func:`reset_warned` first so
the warn-once latch cannot make them order-dependent.
"""

from __future__ import annotations

import warnings

#: Shim keys that already warned this interpreter (the warn-once latch).
_WARNED = set()


def warn_once(shim, replacement, stacklevel=3):
    """Emit one ``DeprecationWarning`` for ``shim``, naming ``replacement``.

    ``shim`` is a stable key (e.g. ``"Process.pf_state"``); repeated
    calls with the same key are free no-ops, so shims on hot paths pay
    one set probe after the first hit.  ``stacklevel`` defaults to 3:
    the caller's caller, which for a property shim is the user code
    that read the attribute.
    """
    if shim in _WARNED:
        return
    _WARNED.add(shim)
    warnings.warn(
        "{} is deprecated; use {} (see docs/INTERNALS.md, "
        "'Compat shims and their removal plan')".format(shim, replacement),
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_warned():
    """Clear the warn-once latch (test isolation only)."""
    _WARNED.clear()
