"""Rule refinement from benign denials (§6.3.1's open problem).

The paper generates rules from runtime traces and accepts that a
too-short trace yields rules that later deny legitimate accesses; it
leaves handling those false positives to future work.  This module
implements the obvious remediation loop:

1. run the deployment with the candidate rules;
2. an operator confirms a batch of denials as *benign* (the same human
   judgement §6.3.2 expects of distributors);
3. :func:`refine_rules` widens exactly the rules that fired — adding
   the denied object labels to a T1 rule's allowed set — and returns
   the new rule text alongside the old.

Widening is deliberately minimal and auditable: only label-set (``-d``)
rules are touched, only with labels actually observed, and the rewrite
is returned (not silently applied) so it can ship through the same
package pipeline as the original rule.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.firewall.matches import LabelSpec, ObjectMatch
from repro.firewall.pftables import parse_rule


class Refinement:
    """One proposed rule rewrite."""

    __slots__ = ("old_text", "new_text", "added_labels")

    def __init__(self, old_text, new_text, added_labels):
        self.old_text = old_text
        self.new_text = new_text
        self.added_labels = frozenset(added_labels)

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<Refinement +{} {}>".format(sorted(self.added_labels), self.new_text)


def _benign_denials_by_rule(kernel):
    """rule text -> set of object labels denied during benign operation."""
    from repro.analysis.denials import collect_denials

    out = {}
    for report in collect_denials(kernel):
        if report.rule_text is None:
            continue
        labels = set()
        for path in report.paths:
            try:
                labels.add(kernel.walker.resolve(path).inode.label)
            except Exception:
                continue
        if labels:
            out.setdefault(report.rule_text, set()).update(labels)
    return out


def _widen(rule_text, labels):
    """Add ``labels`` to the rule's negated ``-d`` set, if it has one."""
    parsed = parse_rule(rule_text)
    for match in parsed.rule.matches:
        if not isinstance(match, ObjectMatch):
            continue
        spec = match.spec
        if not spec.negated:
            return None  # allow-set rules don't deny by exclusion
        widened = LabelSpec(spec.labels | set(labels), negated=True, syshigh=spec.syshigh)
        old_operand = "-d " + spec.render()
        new_operand = "-d " + widened.render()
        if old_operand not in rule_text:
            # Whitespace-normalized fallback via re-render.
            rebuilt = rule_text.replace(spec.render(), widened.render(), 1)
            return rebuilt if rebuilt != rule_text else None
        return rule_text.replace(old_operand, new_operand, 1)
    return None


def refine_rules(kernel):
    """Propose widenings for every rule that denied benign accesses.

    The caller vouches that the kernel's recorded denials were benign
    (run this over a trusted workload only!).  Returns a list of
    :class:`Refinement`.
    """
    proposals = []  # type: List[Refinement]
    for rule_text, labels in sorted(_benign_denials_by_rule(kernel).items()):
        new_text = _widen(rule_text, labels)
        if new_text is not None and new_text != rule_text:
            proposals.append(Refinement(rule_text, new_text, labels))
    return proposals


def apply_refinements(firewall, refinements):
    """Swap refined rules into a live firewall; returns how many."""
    applied = 0
    for refinement in refinements:
        table = firewall.rules.table("filter")
        for chain in list(table.chains.values()):
            for rule in list(chain):
                if rule.text == refinement.old_text:
                    firewall.rules.remove("filter", chain.name, rule)
                    parsed = parse_rule(refinement.new_text)
                    firewall.rules.install("filter", chain.name, parsed.rule)
                    applied += 1
    return applied
