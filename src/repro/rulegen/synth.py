"""Synthetic two-week runtime trace (the substrate for Table 8).

The paper's trace is a real two-week Ubuntu desktop recording (5234
entrypoints, ~410k log entries) that we cannot obtain.  The Table 8
analysis, however, is fully determined by three per-entrypoint
marginals, all of which the paper reports or implies:

- the invocation-count distribution (via the "Rules Produced" column);
- the split of first-invocation classes (4570 high / 664 low);
- for the 525 entrypoints that eventually access **both** integrity
  levels, the distribution of the *reveal index* — the invocation at
  which the second class first appears (via the "Both" column; maximum
  1149).

:func:`synthesize_trace` reconstructs a trace with exactly those
marginals, so running our classifier over it reproduces Table 8 row by
row.  Randomness only affects the irrelevant degrees of freedom (label
choices, interleaving), never the marginals.
"""

from __future__ import annotations

import random
from typing import List

from repro.rulegen.trace import TraceRecord

#: Pure entrypoints by invocation tier: (min_inv, max_inv, count).
#: Derived from Table 8's Rules Produced column minus the surviving
#: "both" impostors at each threshold (see module docstring).
PURE_TIERS = [
    (1, 4, 2615),
    (5, 9, 715),
    (10, 49, 917),
    (50, 99, 185),
    (100, 499, 217),
    (500, 999, 27),
    (1000, 1148, 3),
    (1149, 4999, 19),
    (5000, 12000, 11),
]

#: First-invocation class split over pure entrypoints.
PURE_HIGH = 4229
PURE_LOW = 480

#: "Both" entrypoints: (reveal_min, reveal_max, count, first_high_count).
#: Bucket sizes come from the Both column's deltas; the first-class
#: split within each bucket from the High Only column's deltas.
BOTH_BUCKETS = [
    (2, 5, 290, 134),
    (6, 10, 78, 52),
    (11, 50, 129, 127),
    (51, 100, 10, 10),
    (101, 500, 14, 14),
    (501, 1000, 3, 3),
    (1149, 1149, 1, 1),
]

#: Object-label pools for the two integrity classes.
HIGH_LABELS = ["lib_t", "etc_t", "usr_t", "bin_t", "var_t", "httpd_config_t"]
LOW_LABELS = ["tmp_t", "user_home_t", "user_tmp_t", "httpd_user_content_t"]

_PROGRAMS = [
    "/lib/ld-2.15.so",
    "/lib/libc.so.6",
    "/usr/bin/python2.7",
    "/usr/bin/php5",
    "/usr/bin/apache2",
    "/bin/bash",
    "/usr/bin/nautilus",
    "/usr/bin/evince",
    "/usr/bin/gedit",
    "/usr/sbin/cupsd",
]

_OPS = ["FILE_OPEN", "FILE_GETATTR", "FILE_READ", "DIR_SEARCH", "LNK_FILE_READ"]


def _scaled(count, scale):
    return max(1, int(round(count * scale))) if count else 0


def synthesize_trace(seed=0, scale=1.0):
    """Build the synthetic trace; returns a list of TraceRecords.

    ``scale`` shrinks entrypoint counts proportionally (for fast unit
    tests); ``scale=1.0`` reproduces the paper's marginals exactly.
    """
    rng = random.Random(seed)
    records = []  # type: List[TraceRecord]
    next_offset = [0x10000]

    def new_entrypoint():
        program = rng.choice(_PROGRAMS)
        next_offset[0] += rng.randrange(4, 64, 4)
        return (program, next_offset[0])

    def emit(entrypoint, low, index):
        label = rng.choice(LOW_LABELS if low else HIGH_LABELS)
        records.append(
            TraceRecord(
                entrypoint,
                rng.choice(_OPS),
                label,
                adv_writable=low,
                adv_readable=low,
                path=None,
                time=index,
            )
        )

    # ---- pure entrypoints -------------------------------------------
    pure_total = sum(count for _lo, _hi, count in PURE_TIERS)
    high_budget = _scaled(PURE_HIGH, scale)
    specs = []
    for lo, hi, count in PURE_TIERS:
        for _ in range(_scaled(count, scale)):
            specs.append(rng.randint(lo, hi))
    rng.shuffle(specs)
    for i, inv_count in enumerate(specs):
        entrypoint = new_entrypoint()
        low = i >= high_budget  # first `high_budget` are high-class
        for j in range(inv_count):
            emit(entrypoint, low, j)

    # ---- "both" entrypoints -----------------------------------------
    for reveal_lo, reveal_hi, count, first_high in BOTH_BUCKETS:
        scaled_count = _scaled(count, scale)
        scaled_first_high = min(scaled_count, _scaled(first_high, scale))
        for i in range(scaled_count):
            entrypoint = new_entrypoint()
            first_is_high = i < scaled_first_high
            reveal = rng.randint(reveal_lo, reveal_hi)
            total = reveal + rng.randint(1, 10)
            for j in range(total):
                if j < reveal - 1:
                    low = not first_is_high
                elif j == reveal - 1:
                    low = first_is_high  # the flip
                else:
                    low = rng.random() < 0.5
                emit(entrypoint, low, j)

    return records
