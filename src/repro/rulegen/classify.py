"""Entrypoint classification and the Table 8 threshold analysis.

Per §6.3.1: collect every resource accessed by each entrypoint over a
runtime trace; entrypoints that touch **only** high-integrity or
**only** low-integrity resources get invariant rules; entrypoints that
touch both cannot be ruled without false positives.

Table 8 sweeps an *invocation threshold* ``t``:

- an entrypoint is classified from its **first t invocations** (first
  one for ``t = 0`` — which is why the "Both" column starts at 0: a
  single observation can never be both);
- a rule is produced when the entrypoint has **at least t invocations**
  and the prefix classification is pure (high-only or low-only);
- a produced rule is a **false positive** when the entrypoint's
  full-trace classification is actually "both" — the rule would block a
  legitimate access later in the trace.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.rulesets.default import restrict_entrypoint_rule

HIGH = "high"
LOW = "low"
BOTH = "both"


class ClassifiedEntrypoint:
    """Aggregate of one entrypoint's accesses over a trace.

    Attributes:
        entrypoint: ``(program, offset)``.
        integrity_seq: per-invocation low-integrity flags, in order.
        labels_high / labels_low: object labels seen on each side.
        ops: operations observed.
    """

    __slots__ = ("entrypoint", "integrity_seq", "labels_high", "labels_low", "ops")

    def __init__(self, entrypoint):
        self.entrypoint = entrypoint
        self.integrity_seq = []  # type: List[bool]
        self.labels_high = set()
        self.labels_low = set()
        self.ops = set()

    def add(self, record):
        self.integrity_seq.append(record.low_integrity)
        if record.low_integrity:
            self.labels_low.add(record.object_label)
        else:
            self.labels_high.add(record.object_label)
        self.ops.add(record.op)

    @property
    def invocations(self):
        return len(self.integrity_seq)

    def class_of_prefix(self, t):
        """Classification from the first ``t`` invocations (≥1)."""
        window = self.integrity_seq[: max(t, 1)]
        saw_low = any(window)
        saw_high = not all(window)
        if saw_low and saw_high:
            return BOTH
        return LOW if saw_low else HIGH

    def full_class(self):
        return self.class_of_prefix(self.invocations)

    def reveal_index(self):
        """Invocation index (1-based) at which the class became "both".

        ``None`` for pure entrypoints.  Table 8's headline number: the
        maximum reveal index over the paper's trace was 1149.
        """
        if self.full_class() is not BOTH:
            return None
        first = self.integrity_seq[0]
        for i, flag in enumerate(self.integrity_seq):
            if flag != first:
                return i + 1
        return None  # unreachable for a BOTH sequence


def classify(records):
    """Group trace records by entrypoint."""
    by_ept = {}  # type: Dict[Tuple[str, int], ClassifiedEntrypoint]
    for record in records:
        if record.entrypoint is None:
            continue
        bucket = by_ept.get(record.entrypoint)
        if bucket is None:
            bucket = by_ept[record.entrypoint] = ClassifiedEntrypoint(record.entrypoint)
        bucket.add(record)
    return by_ept


def table8_row(classified, threshold):
    """One Table 8 row at one invocation threshold.

    Returns a dict with the paper's five columns.
    """
    high_only = low_only = both = rules = false_positives = 0
    for ept in classified.values():
        prefix_class = ept.class_of_prefix(threshold)
        if prefix_class is BOTH:
            both += 1
        elif prefix_class is HIGH:
            high_only += 1
        else:
            low_only += 1
        if prefix_class is not BOTH and ept.invocations >= threshold:
            rules += 1
            if ept.full_class() is BOTH:
                false_positives += 1
    return {
        "threshold": threshold,
        "high_only": high_only,
        "low_only": low_only,
        "both": both,
        "rules_produced": rules,
        "false_positives": false_positives,
    }


#: The thresholds printed in Table 8.
TABLE8_THRESHOLDS = (0, 5, 10, 50, 100, 500, 1000, 1149, 5000)


def threshold_sweep(records, thresholds=TABLE8_THRESHOLDS):
    """All Table 8 rows for a trace."""
    classified = classify(records)
    return [table8_row(classified, t) for t in thresholds]


def zero_fp_threshold(records):
    """The smallest threshold with no false positives (paper: 1149).

    Equals the maximum reveal index over all "both" entrypoints that
    would otherwise earn a rule.
    """
    classified = classify(records)
    worst = 0
    for ept in classified.values():
        reveal = ept.reveal_index()
        if reveal is not None and reveal > worst:
            worst = reveal
    return worst


def rules_for_threshold(records, threshold, high_labels=("SYSHIGH",)):
    """Generate T1 rules for the pure entrypoints above a threshold.

    High-classified entrypoints are pinned to the labels they actually
    accessed (generalized per §6.3.1 to the full safe set); low-
    classified entrypoints to theirs.
    """
    classified = classify(records)
    out = []
    for ept in classified.values():
        if ept.invocations < threshold:
            continue
        # Generation uses the *full* trace classification (§6.3.1
        # collects all resources accessed); the prefix-based view only
        # matters for Table 8's what-if-we-had-stopped-at-t analysis.
        full_class = ept.full_class()
        if full_class is BOTH:
            continue
        labels = ept.labels_high if full_class is HIGH else ept.labels_low
        labels = sorted(label for label in labels if label)
        if not labels:
            continue
        program, offset = ept.entrypoint
        # Generalize: a high entrypoint may touch anything SYSHIGH.
        resource_set = "SYSHIGH" if full_class is HIGH else labels
        primary_op = sorted(ept.ops)[0]
        out.append(restrict_entrypoint_rule(program, offset, resource_set, op=primary_op))
    return out
