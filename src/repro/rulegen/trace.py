"""Runtime-trace records.

A :class:`TraceRecord` is one resource access observed by the ``LOG``
target (or synthesized).  The only fields rule generation consumes are
the entrypoint, the operation, the object label, and the adversary
accessibility of the resource ("low integrity" = an adversary can write
it, per Table 2's unsafe-resource column for the search-path family).
"""

from __future__ import annotations


class TraceRecord:
    """One logged resource access."""

    __slots__ = ("entrypoint", "op", "object_label", "adv_writable", "adv_readable", "path", "time", "comm")

    def __init__(self, entrypoint, op, object_label, adv_writable, adv_readable=False, path=None, time=0, comm=""):
        self.entrypoint = tuple(entrypoint) if entrypoint else None  # (program, offset)
        self.op = op
        self.object_label = object_label
        self.adv_writable = bool(adv_writable)
        self.adv_readable = bool(adv_readable)
        self.path = path
        self.time = time
        self.comm = comm

    @property
    def low_integrity(self):
        """The record touched an adversary-modifiable resource."""
        return self.adv_writable

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<TraceRecord {} {} {} low={}>".format(self.entrypoint, self.op, self.object_label, self.adv_writable)


def records_from_json(text):
    """Parse trace records from a JSON dump of ``LOG`` output.

    Accepts the exact record shape the ``LOG`` target emits (a JSON
    array of objects), so traces can be moved between machines — the
    distributor workflow of §6.3.2.
    """
    import json

    out = []
    for rec in json.loads(text):
        entrypoint = rec.get("entrypoint")
        out.append(
            TraceRecord(
                tuple(entrypoint) if entrypoint else None,
                rec.get("op"),
                rec.get("object_label"),
                rec.get("adv_writable", False),
                rec.get("adv_readable", False),
                path=rec.get("path"),
                time=rec.get("time", 0),
                comm=rec.get("comm", ""),
            )
        )
    return out


def dump_log_json(firewall):
    """Serialize a firewall's ``LOG`` records to JSON text."""
    import json

    return json.dumps(firewall.audit.records(kind="log"))


def records_from_engine(firewall):
    """Convert a firewall's ``LOG`` output into trace records."""
    out = []
    for rec in firewall.audit.records(kind="log"):
        entrypoint = rec.get("entrypoint")
        out.append(
            TraceRecord(
                tuple(entrypoint) if entrypoint else None,
                rec.get("op"),
                rec.get("object_label"),
                rec.get("adv_writable", False),
                rec.get("adv_readable", False),
                path=rec.get("path"),
                time=rec.get("time", 0),
                comm=rec.get("comm", ""),
            )
        )
    return out
