"""Rule suggestion from LOG output and from known vulnerabilities.

Two of §6.3's generation paths:

- ``suggest_rules_from_log`` — the runtime-analysis path used to
  produce R1-R4: collect per-entrypoint label sets from a firewall's
  ``LOG`` records and emit T1 rules for pure entrypoints above a
  threshold;
- ``rule_from_vulnerability`` — the known-vulnerability path used for
  R5-R7: a testing tool (the authors' STING) logs the entrypoint and
  unsafe resource of a confirmed attack; the attack type selects the
  template, "so no false positives are possible".
"""

from __future__ import annotations

from repro.rulegen.classify import rules_for_threshold
from repro.rulegen.trace import records_from_engine
from repro.rulesets.default import restrict_entrypoint_rule, toctou_rules


def suggest_rules_from_log(firewall, threshold=100):
    """T1 rules from a firewall's accumulated ``LOG`` records."""
    records = records_from_engine(firewall)
    return rules_for_threshold(records, threshold)


def suggest_script_rules(firewall, threshold=20):
    """Script-level (``-m SCRIPT``) rules from ``LOG`` records.

    For interpreted programs, per-binary-entrypoint classification
    lumps every script together; this variant classifies per *script
    call site* instead, emitting a rule for each pure script entry with
    at least ``threshold`` invocations.
    """
    per_script = {}
    for rec in firewall.audit.records(kind="log"):
        script = rec.get("script")
        if not script:
            continue
        key = (tuple(script), rec.get("op"))
        bucket = per_script.setdefault(key, {"count": 0, "low": False, "labels": set()})
        bucket["count"] += 1
        bucket["low"] = bucket["low"] or bool(rec.get("adv_writable"))
        if rec.get("object_label"):
            bucket["labels"].add(rec["object_label"])
    out = []
    for (script, op), bucket in sorted(per_script.items()):
        if bucket["count"] < threshold or bucket["low"]:
            continue
        path, line = script
        out.append(
            "pftables -A input -o {op} -m SCRIPT --file {file} --line {line} "
            "-d ~SYSHIGH -j DROP".format(op=op, file=path, line=line)
        )
    return out


class VulnerabilityReport:
    """What the testing tool logs about one confirmed attack.

    Attributes:
        attack_type: one of the taxonomy keys (e.g.
            ``"untrusted_search_path"``, ``"toctou_race"``).
        program: binary/image containing the vulnerable entrypoint(s).
        entrypoint: offset of the vulnerable resource access.
        op: the mediated operation of the unsafe access.
        unsafe_label: label of the resource the attack used.
        check_entrypoint / check_op: for TOCTTOU reports, the "check"
            half of the pair.
    """

    def __init__(self, attack_type, program, entrypoint, op="FILE_OPEN",
                 unsafe_label=None, check_entrypoint=None, check_op="FILE_GETATTR"):
        self.attack_type = attack_type
        self.program = program
        self.entrypoint = entrypoint
        self.op = op
        self.unsafe_label = unsafe_label
        self.check_entrypoint = check_entrypoint
        self.check_op = check_op


def rule_from_vulnerability(report):
    """Generate the blocking rule(s) for a confirmed vulnerability.

    Generalizes per §6.3.1: the rule denies access to *all* unsafe
    resources for the entrypoint based on the attack type (search-path
    attacks deny everything outside SYSHIGH; TOCTTOU gets the stateful
    T2 pair).
    """
    if report.attack_type == "toctou_race":
        if report.check_entrypoint is None:
            raise ValueError("TOCTTOU report needs the check entrypoint")
        return toctou_rules(
            report.program, report.check_entrypoint, report.check_op, report.entrypoint, report.op
        )
    # Search-path / library / inclusion / squat family: the safe set is
    # the adversary-inaccessible one — deny everything outside SYSHIGH.
    return [
        restrict_entrypoint_rule(report.program, report.entrypoint, "SYSHIGH", op=report.op)
    ]
