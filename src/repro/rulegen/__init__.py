"""Rule generation (paper §6.3).

Three sources of rules, in increasing automation:

1. **Known vulnerabilities** (:mod:`repro.rulegen.suggest`): a logged
   attack gives the entrypoint + unsafe resource; templates T1/T2 turn
   it into a rule with no false-positive risk.
2. **Runtime traces** (:mod:`repro.rulegen.classify`): entrypoints that
   only ever touch high-integrity (or only low-integrity) resources get
   T1 rules; Table 8 quantifies the threshold-vs-false-positive
   frontier, reproduced against a synthetic two-week trace
   (:mod:`repro.rulegen.synth`).
3. **OS distributors** (:mod:`repro.rulegen.distro`): rules shipped in
   packages are valid wherever programs run in the packaged
   environment; §6.3.2's launch-consistency analysis.
"""

from repro.rulegen.trace import TraceRecord, records_from_engine
from repro.rulegen.classify import ClassifiedEntrypoint, classify, table8_row, threshold_sweep
from repro.rulegen.refine import Refinement, apply_refinements, refine_rules
from repro.rulegen.suggest import rule_from_vulnerability, suggest_rules_from_log, suggest_script_rules
from repro.rulegen.synth import synthesize_trace
from repro.rulegen.distro import LaunchRecord, consistent_programs

__all__ = [
    "TraceRecord",
    "records_from_engine",
    "ClassifiedEntrypoint",
    "classify",
    "table8_row",
    "threshold_sweep",
    "suggest_rules_from_log",
    "suggest_script_rules",
    "rule_from_vulnerability",
    "synthesize_trace",
    "LaunchRecord",
    "consistent_programs",
    "Refinement",
    "refine_rules",
    "apply_refinements",
]
