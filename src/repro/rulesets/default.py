"""Table 5: the paper's printed rules and templates.

``PAPER_TABLE5_TEXTS`` holds the rule lines exactly as printed (for the
parser round-trip test).  ``RULES_R1_R12`` holds the *installable*
ordering: the paper prints R10/R11 with ``-I`` (insert-at-top) for
exposition, but check-before-set requires R10 to precede R11 in the
chain, so the shipped set appends (``-A``) in evaluation order.
"""

from __future__ import annotations

#: Rule lines exactly as printed in the paper's Table 5.
PAPER_TABLE5_TEXTS = [
    # R1 — only trusted library files loaded by the dynamic linker.
    "pftables -p /lib/ld-2.15.so -i 0x596b -s SYSHIGH -d ~{lib_t|textrel_shlib_t|httpd_modules_t} -o FILE_OPEN -j DROP",
    # R2 — only trusted python modules.
    "pftables -p /usr/bin/python2.7 -i 0x34f05 -s SYSHIGH -d ~{lib_t|usr_t} -o FILE_OPEN -j DROP",
    # R3 — libdbus connects only to the trusted server socket.
    "pftables -p /lib/libdbus-1.so.3 -i 0x39231 -s SYSHIGH -d ~{system_dbusd_var_run_t} -o UNIX_STREAM_SOCKET_CONNECT -j DROP",
    # R4 — only properly labeled PHP files (blocks local file inclusion).
    "pftables -p /usr/bin/php5 -i 0x27ad2c -s SYSHIGH -d ~{httpd_user_script_exec_t} -o FILE_OPEN -j DROP",
    # R5 — on bind, record the created inode number.
    "pftables -i 0x3c750 -p /bin/dbus-daemon -o SOCKET_BIND -j STATE --set --key 0xbeef --value C_INO",
    # R6 — on chmod, block if a different inode is being changed.
    "pftables -i 0x3c786 -p /bin/dbus-daemon -o SOCKET_SETATTR -m STATE --key 0xbeef --cmp C_INO --nequal -j DROP",
    # R7 — java must not load untrusted configuration files.
    "pftables -i 0x5d7e -p /usr/bin/java -d ~{SYSHIGH} -o FILE_OPEN -j DROP",
    # R8 — SymLinksIfOwnerMatch as a firewall rule.
    "pftables -i 0x2d637 -p /usr/bin/apache2 -o LINK_READ -m COMPARE --v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP",
    # R9 — route signal deliveries to the signal chain.
    "pftables -I input -o PROCESS_SIGNAL_DELIVERY -j SIGNAL_CHAIN",
    # R10 — already in a handler: drop a second handled signal.
    "pftables -I signal_chain -m SIGNAL_MATCH -m STATE --key 'sig' --cmp 1 -j DROP",
    # R11 — record handler entry.
    "pftables -I signal_chain -m SIGNAL_MATCH -j STATE --set --key 'sig' --value 1",
    # R12 — sigreturn clears the in-handler state.
    "pftables -I syscallbegin -m SYSCALL_ARGS --arg 0 --equal NR_sigreturn -j STATE --set --key 'sig' --value 0",
]

#: R1-R8 install in any order (deny-only, independent entrypoints).
RULES_R1_R8 = PAPER_TABLE5_TEXTS[:8]

#: Signal rules in *evaluation* order (R9; R10 before R11; R12).
SIGNAL_RULE_TEXTS = [
    "pftables -A input -o PROCESS_SIGNAL_DELIVERY -j SIGNAL_CHAIN",
    "pftables -A signal_chain -m SIGNAL_MATCH -m STATE --key 'sig' --cmp 1 -j DROP",
    "pftables -A signal_chain -m SIGNAL_MATCH -j STATE --set --key 'sig' --value 1",
    "pftables -A syscallbegin -m SYSCALL_ARGS --arg 0 --equal NR_sigreturn -j STATE --set --key 'sig' --value 0",
]

#: The full installable Table 5 set.
RULES_R1_R12 = RULES_R1_R8 + SIGNAL_RULE_TEXTS


def install_default_rules(firewall):
    """Install R1-R12; returns the installed rules."""
    return firewall.install_all(RULES_R1_R12)


def install_signal_rules(firewall):
    """Install only the signal-race rules R9-R12."""
    return firewall.install_all(SIGNAL_RULE_TEXTS)


# ----------------------------------------------------------------------
# templates (Table 5 bottom)
# ----------------------------------------------------------------------


def restrict_entrypoint_rule(program, entrypoint, resource_labels, op="FILE_OPEN", subject=None):
    """Template T1: pin an entrypoint to a set of resource labels.

    Args:
        program: binary/image path containing the entrypoint.
        entrypoint: base-relative call-site offset.
        resource_labels: iterable of *allowed* object labels (or the
            string ``"SYSHIGH"``).
        op: the mediated operation.
        subject: optional ``-s`` operand (e.g. ``"SYSHIGH"``).
    """
    if isinstance(resource_labels, str):
        body = resource_labels
    else:
        body = "{" + "|".join(sorted(resource_labels)) + "}"
    subject_part = "-s {} ".format(subject) if subject else ""
    return (
        "pftables -A input -i {ept:#x} -p {prog} {subj}-d ~{body} -o {op} -j DROP".format(
            ept=entrypoint, prog=program, subj=subject_part, body=body, op=op
        )
    )


def toctou_rules(program, check_entrypoint, check_op, use_entrypoint, use_op, identity="C_INO"):
    """Template T2: pin a "use" call to the resource its "check" saw.

    The state key is the use entrypoint offset, as in the paper.

    ``identity`` selects the recorded identity atom: the paper's
    ``C_INO`` (inode number — defeated by inode recycling) or the
    extension ``C_OBJ`` (kernel identity including the generation,
    sound under the cryogenic-sleep attack).
    """
    key = "{:#x}".format(use_entrypoint)
    # The paper writes "-I create/input" for the record rule; we route
    # it through the input chain, which sees every mediated operation
    # (the create chain only sees FILE_CREATE).
    record = (
        "pftables -A input -i {ept:#x} -p {prog} -o {op} "
        "-j STATE --set --key {key} --value {ident}".format(
            ept=check_entrypoint, prog=program, op=check_op, key=key, ident=identity
        )
    )
    enforce = (
        "pftables -A input -i {ept:#x} -b {prog} -o {op} "
        "-m STATE --key {key} --cmp {ident} --nequal -j DROP".format(
            ept=use_entrypoint, prog=program, op=use_op, key=key, ident=identity
        )
    )
    return [record, enforce]


def safe_open_pf_rules():
    """System-wide ``safe_open`` as firewall rules (Figure 4's
    ``safe_open_PF`` and the E9 catch).

    Drops traversal through any adversary-controlled symlink whose
    owner differs from its target's owner — Chari et al.'s invariant,
    but enforced atomically at each mediated walk step, so there is no
    check/use window at all.
    """
    return [
        "pftables -A input -o LNK_FILE_READ -m ADVERSARY --writable "
        "-m COMPARE --v1 C_DAC_OWNER --v2 C_TGT_DAC_OWNER --nequal -j DROP",
    ]
