"""Shipped rule sets.

- :mod:`repro.rulesets.default` — the paper's Table 5: rules R1-R12
  verbatim, the T1/T2 templates as functions, and the ``safe_open``
  firewall equivalent.
- :mod:`repro.rulesets.generated` — the ~1218-rule "PF Full" base used
  by the performance evaluation (Tables 6-7), produced the way §6.3
  describes: entrypoint-restriction rules suggested from runtime
  traces at a low invocation threshold.
"""

from repro.rulesets.default import (
    PAPER_TABLE5_TEXTS,
    RULES_R1_R12,
    install_default_rules,
    install_signal_rules,
    restrict_entrypoint_rule,
    safe_open_pf_rules,
    toctou_rules,
)
from repro.rulesets.generated import generate_full_rulebase

__all__ = [
    "PAPER_TABLE5_TEXTS",
    "RULES_R1_R12",
    "install_default_rules",
    "install_signal_rules",
    "restrict_entrypoint_rule",
    "safe_open_pf_rules",
    "toctou_rules",
    "generate_full_rulebase",
]
