"""Per-package rule sets — the OS-distributor delivery vehicle (§6.3.2).

The paper envisions distributors shipping Process Firewall rules inside
application packages: install ``apache2`` and its rules come with it.
This module is that registry for the simulated distribution, mapping
package names to the rule lines their maintainers would ship, with
provenance notes.
"""

from __future__ import annotations

from typing import Dict, List

from repro import errors
from repro.programs.apache import EPT_SERVE_OPEN
from repro.rulesets.default import (
    RULES_R1_R12,
    SIGNAL_RULE_TEXTS,
    restrict_entrypoint_rule,
    safe_open_pf_rules,
)

#: package name -> pftables lines shipped with it.
PACKAGE_RULES = {
    # The C library / loader package protects every dynamically linked
    # program on the system (rules R1).
    "libc6": [RULES_R1_R12[0]],
    # Base system: the system-wide safe-open link rules plus the signal
    # race rules (they protect every process).
    "base-files": list(safe_open_pf_rules()) + list(SIGNAL_RULE_TEXTS),
    "apache2": [
        RULES_R1_R12[7],  # R8: SymLinksIfOwnerMatch
        restrict_entrypoint_rule(
            "/usr/bin/apache2",
            EPT_SERVE_OPEN,
            ("httpd_sys_content_t", "httpd_user_content_t"),
            op="FILE_OPEN",
        ),
    ],
    "php5": [RULES_R1_R12[3]],  # R4
    "python2.7": [RULES_R1_R12[1]],  # R2
    "libdbus-1": [RULES_R1_R12[2]],  # R3
    "dbus-daemon": [
        RULES_R1_R12[4],  # R5: record the bound inode
        RULES_R1_R12[5],  # R6: drop mismatched SOCKET_SETATTR
        # Companion to R6: a chmod raced through a swapped path reaches
        # a *file* object, which the LSM classes as FILE_SETATTR.
        "pftables -A input -i 0x3c786 -p /bin/dbus-daemon -o FILE_SETATTR "
        "-m STATE --key 0xbeef --cmp C_INO --nequal -j DROP",
    ],
    "openjdk": [RULES_R1_R12[6]],  # R7
    "openssh-server": list(SIGNAL_RULE_TEXTS),
}  # type: Dict[str, List[str]]


def rules_for_packages(names):
    """Collect the rule lines for a set of installed packages.

    Duplicate lines across packages (e.g. two packages both shipping
    the signal rules) install once, preserving first-seen order.
    """
    out = []
    seen = set()
    for name in names:
        try:
            lines = PACKAGE_RULES[name]
        except KeyError:
            raise errors.EINVAL("no shipped rules for package {!r}".format(name))
        for line in lines:
            if line not in seen:
                seen.add(line)
                out.append(line)
    return out


def install_packages(firewall, names):
    """Install the rules shipped by ``names``; returns the rule count."""
    firewall.install_all(rules_for_packages(names))
    return firewall.rules.rule_count()


def all_packages():
    return sorted(PACKAGE_RULES)
