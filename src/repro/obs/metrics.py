"""Metrics registry: counters and phase timers with exporters.

Per-rule / per-chain / per-table hit, drop, and evaluation counters
plus phase timers (context collection, chain walk, decision-cache
probe), exportable as JSON and Prometheus-style text.  The registry is
**disabled by default**: the engine guards every instrumentation site
with a single ``registry.enabled`` attribute check, so the cost of the
disabled path is one boolean test per site (measured in the Table 6
grid's TRACED column against COMPILED — see ``docs/OBSERVABILITY.md``).

Families of note: ``pf_rescache_total{result=hit|miss|invalidate}``
counts resource-context cache outcomes (JITTED configurations), and
``pf_dcache_total{cache=dentry|walk, result=hit|negative_hit|miss|
invalidate}`` counts name-resolution fast-path outcomes (one-shot
published by :meth:`repro.vfs.dcache.Dcache.publish`).  Both are
surfaced by ``pfctl counters`` and described in
``docs/OBSERVABILITY.md``.

Counter identity is ``(name, labels)`` where ``labels`` is a sorted
tuple of ``(key, value)`` string pairs — the same shape Prometheus
uses, so the text exporter is a direct rendering and
:func:`parse_prometheus` round-trips it exactly.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Tuple

#: Engine phase names (docs/INTERNALS.md "Mediation pipeline" stages).
PHASE_CONTEXT = "context"
PHASE_CHAIN_WALK = "chain_walk"
PHASE_CACHE_PROBE = "decision_cache"

_PROM_LINE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+([0-9.eE+-]+)$")
_PROM_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _freeze_labels(labels):
    """Normalize a labels dict to the sorted-tuple counter key."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value):
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value):
    """Inverse of :func:`_escape_label_value`."""
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


class MetricsRegistry:
    """Counter and phase-timer store for one firewall instance.

    All mutation goes through :meth:`inc` and :meth:`observe_phase`;
    the engine calls them only when :attr:`enabled` is true, so a
    disabled registry costs one attribute check per instrumentation
    site and holds no data.
    """

    def __init__(self, enabled=False):
        self.enabled = enabled
        #: name -> {labels tuple -> value}
        self._counters = {}  # type: Dict[str, Dict[Tuple, float]]
        #: phase -> [total_seconds, entries]
        self._phases = {}  # type: Dict[str, list]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def enable(self):
        """Turn instrumentation on (counters keep any prior values)."""
        self.enabled = True

    def disable(self):
        """Turn instrumentation off; buffered values stay readable."""
        self.enabled = False

    def reset(self):
        """Drop every counter and timer (the enabled flag is untouched)."""
        self._counters = {}
        self._phases = {}

    def inc(self, name, labels=None, value=1):
        """Add ``value`` to the counter ``name`` with ``labels``."""
        series = self._counters.get(name)
        if series is None:
            series = self._counters[name] = {}
        key = _freeze_labels(labels)
        series[key] = series.get(key, 0) + value

    def observe_phase(self, phase, seconds):
        """Record one timed pass through an engine phase."""
        bucket = self._phases.get(phase)
        if bucket is None:
            bucket = self._phases[phase] = [0.0, 0]
        bucket[0] += seconds
        bucket[1] += 1

    # ------------------------------------------------------------------
    # combination (sharded / multi-worker runs)
    # ------------------------------------------------------------------

    def merge(self, other):
        """Fold another registry's counters and timers into this one.

        Pure addition on ``(name, labels)`` series and phase buckets,
        so the operation is **associative and commutative**: merging
        per-shard registries in any order — or any grouping — yields
        the same totals as one registry that counted everything
        (pinned by the property test in
        ``tests/obs/test_metrics_merge.py``).  Nothing is lost: every
        counter series and both halves of every phase bucket (seconds
        *and* entries) participate.  The other registry is not
        modified; returns ``self`` for chaining.
        """
        for name, series in other._counters.items():
            mine = self._counters.setdefault(name, {})
            for key, value in series.items():
                mine[key] = mine.get(key, 0) + value
        for phase, bucket in other._phases.items():
            target = self._phases.setdefault(phase, [0.0, 0])
            target[0] += bucket[0]
            target[1] += bucket[1]
        return self

    def snapshot(self):
        """A detached copy of this registry (values frozen at call time).

        The copy shares no mutable state with the original, so a worker
        can keep counting while the driver merges the snapshot — and
        merging snapshots is exactly as associative as merging live
        registries.  The ``enabled`` flag is copied as-is.
        """
        copy = MetricsRegistry(enabled=self.enabled)
        copy._counters = {name: dict(series) for name, series in self._counters.items()}
        copy._phases = {phase: list(bucket) for phase, bucket in self._phases.items()}
        return copy

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def value(self, name, labels=None):
        """Current value of one counter (0 when never incremented)."""
        return self._counters.get(name, {}).get(_freeze_labels(labels), 0)

    def counters(self):
        """Every counter as ``(name, labels_tuple, value)`` rows, sorted."""
        rows = []
        for name in sorted(self._counters):
            for key in sorted(self._counters[name]):
                rows.append((name, key, self._counters[name][key]))
        return rows

    def phases(self):
        """Phase timers as ``{phase: {"seconds": s, "entries": n}}``."""
        return {
            phase: {"seconds": bucket[0], "entries": bucket[1]}
            for phase, bucket in sorted(self._phases.items())
        }

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def as_dict(self):
        """JSON-shaped snapshot of every counter and phase timer."""
        return {
            "counters": [
                {"name": name, "labels": dict(key), "value": value}
                for name, key, value in self.counters()
            ],
            "phases": self.phases(),
        }

    def to_json(self, indent=2):
        """The :meth:`as_dict` snapshot as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self):
        """Prometheus text-format rendering of the registry.

        Counters export under their own names; phase timers export as
        the ``pf_phase_seconds_total`` / ``pf_phase_entries_total``
        pair, labelled by phase.  :func:`parse_prometheus` inverts this
        exactly (the round-trip is pinned by tests).
        """
        lines = []
        for name in sorted(self._counters):
            lines.append("# TYPE {} counter".format(name))
            for key in sorted(self._counters[name]):
                value = self._counters[name][key]
                if key:
                    labels = ",".join(
                        '{}="{}"'.format(k, _escape_label_value(v)) for k, v in key
                    )
                    lines.append("{}{{{}}} {}".format(name, labels, _format_value(value)))
                else:
                    lines.append("{} {}".format(name, _format_value(value)))
        if self._phases:
            lines.append("# TYPE pf_phase_seconds_total counter")
            for phase in sorted(self._phases):
                lines.append('pf_phase_seconds_total{{phase="{}"}} {}'.format(
                    phase, _format_value(self._phases[phase][0])))
            lines.append("# TYPE pf_phase_entries_total counter")
            for phase in sorted(self._phases):
                lines.append('pf_phase_entries_total{{phase="{}"}} {}'.format(
                    phase, _format_value(self._phases[phase][1])))
        return "\n".join(lines) + "\n"


def _format_value(value):
    """Render a counter value: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def parse_prometheus(text):
    """Parse Prometheus text format back to ``{(name, labels): value}``.

    The inverse of :meth:`MetricsRegistry.to_prometheus` for the subset
    it emits (counters only, no HELP lines); used by the round-trip
    tests and by ``pfctl`` consumers that want structured counters.
    """
    out = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        matched = _PROM_LINE.match(line)
        if matched is None:
            raise ValueError("unparseable metrics line: {!r}".format(line))
        name, label_text, value_text = matched.groups()
        labels = ()
        if label_text:
            labels = tuple(
                (key, _unescape_label_value(value))
                for key, value in _PROM_LABEL.findall(label_text)
            )
        value = float(value_text)
        if value.is_integer():
            value = int(value)
        out[(name, labels)] = value
    return out


def registry_from_prometheus(text):
    """Rebuild a :class:`MetricsRegistry` from exported text.

    Phase-timer series (``pf_phase_*_total``) are folded back into
    phase buckets; everything else becomes a counter.  Together with
    :meth:`MetricsRegistry.to_prometheus` this gives the full
    export → parse → same-counters round-trip.
    """
    registry = MetricsRegistry()
    seconds = {}
    entries = {}
    for (name, labels), value in parse_prometheus(text).items():
        label_dict = dict(labels)
        if name == "pf_phase_seconds_total":
            seconds[label_dict["phase"]] = value
        elif name == "pf_phase_entries_total":
            entries[label_dict["phase"]] = value
        else:
            registry.inc(name, labels=label_dict, value=value)
    for phase in seconds:
        bucket = registry._phases.setdefault(phase, [0.0, 0])
        bucket[0] = float(seconds[phase])
        bucket[1] = int(entries.get(phase, 0))
    return registry
