"""Bounded audit ring buffer with severity levels.

The seed engine accumulated ``LOG``-target records in an unbounded
Python list (``ProcessFirewall.log_records``); long trace-gathering
runs grew without limit and there was no way to distinguish a routine
``-j LOG`` record from a drop notification.  The ring replaces that
list with a fixed-capacity buffer (oldest records evicted first, like
a kernel ring buffer) carrying a severity and a *kind* channel per
record.  The engine keeps ``log_records`` as a compatibility view over
the ``"log"`` channel, so rule generation and the differential harness
see exactly what the unbounded list used to hold.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

#: Severity levels, syslog-flavoured.  Records carry the numeric value;
#: :func:`severity_name` / :func:`severity_level` convert for humans.
DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

#: name -> numeric level (accepted by :meth:`AuditRing.emit` and the
#: ``-j LOG --level`` rule option).
SEVERITY_LEVELS = {"debug": DEBUG, "info": INFO, "warning": WARNING, "error": ERROR}

_LEVEL_NAMES = {level: name for name, level in SEVERITY_LEVELS.items()}


def severity_name(level):
    """Human name for a numeric severity (unknown values render as-is)."""
    return _LEVEL_NAMES.get(level, str(level))


def severity_level(name):
    """Numeric severity for a name; numeric input passes through."""
    if isinstance(name, int):
        return name
    try:
        return SEVERITY_LEVELS[name.lower()]
    except KeyError:
        raise ValueError("unknown severity {!r} (expected one of {})".format(
            name, "/".join(sorted(SEVERITY_LEVELS))))


class AuditEntry:
    """One ring slot: a monotonically numbered, classified record.

    Attributes:
        seq: global emission number (survives eviction, so gaps reveal
            how much history the ring has dropped).
        severity: numeric level (:data:`DEBUG` .. :data:`ERROR`).
        kind: channel name — ``"log"`` for ``-j LOG`` records,
            ``"drop"`` for verdict denials, free-form for extensions.
        record: the payload dict (JSON-serializable).
    """

    __slots__ = ("seq", "severity", "kind", "record")

    def __init__(self, seq, severity, kind, record):
        self.seq = seq
        self.severity = severity
        self.kind = kind
        self.record = record

    def as_dict(self):
        """Entry as one flat JSON-ready dict (metadata + payload)."""
        out = {"seq": self.seq, "severity": severity_name(self.severity), "kind": self.kind}
        out.update(self.record)
        return out

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<AuditEntry #{} {} {} {!r}>".format(
            self.seq, severity_name(self.severity), self.kind, self.record)


class AuditRing:
    """Fixed-capacity audit buffer: oldest entries evicted on overflow.

    Unlike the unbounded list it replaces, memory use is bounded by
    ``capacity``; the :attr:`evicted` counter says how many records
    history no longer holds.
    """

    def __init__(self, capacity=4096):
        if capacity < 1:
            raise ValueError("AuditRing capacity must be >= 1")
        self.capacity = capacity
        self._entries = deque(maxlen=capacity)  # type: Deque[AuditEntry]
        self._next_seq = 0

    @property
    def evicted(self):
        """How many records the ring has dropped to stay within capacity."""
        return self._next_seq - len(self._entries)

    def emit(self, record, severity=INFO, kind="log"):
        """Append one record; returns its global sequence number.

        ``severity`` accepts a numeric level or a name ("warning").
        """
        level = severity_level(severity)
        seq = self._next_seq
        self._next_seq += 1
        self._entries.append(AuditEntry(seq, level, kind, record))
        return seq

    def entries(self, min_severity=None, kind=None):
        """Entries in emission order, optionally filtered.

        ``min_severity`` (level or name) keeps entries at or above that
        level; ``kind`` restricts to one channel.
        """
        floor = None if min_severity is None else severity_level(min_severity)
        out = []
        for entry in self._entries:
            if floor is not None and entry.severity < floor:
                continue
            if kind is not None and entry.kind != kind:
                continue
            out.append(entry)
        return out

    def records(self, min_severity=None, kind=None):
        """Like :meth:`entries` but returning only the payload dicts."""
        return [entry.record for entry in self.entries(min_severity, kind)]

    def next_seq(self):
        """The sequence number the *next* emitted entry will get.

        A cheap high-water mark: callers bracketing a unit of work can
        diff two ``next_seq()`` readings to learn how many records the
        work emitted, then fetch exactly those via :meth:`tail` — the
        parallel replay workers do this per trace entry to tag records
        with a logical clock.
        """
        return self._next_seq

    def tail(self, count):
        """The most recent ``count`` entries, oldest first.

        Costs O(``count``), not O(ring) — it walks the deque from the
        right — so per-entry bracketing stays cheap even with a large
        ring.  Asking for more entries than the ring retains returns
        what is left (eviction may have discarded the rest).
        """
        if count <= 0:
            return []
        out = []
        it = reversed(self._entries)
        for _ in range(min(count, len(self._entries))):
            out.append(next(it))
        out.reverse()
        return out

    def clear(self):
        """Discard every buffered entry (the sequence counter keeps going)."""
        self._entries.clear()

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(list(self._entries))
