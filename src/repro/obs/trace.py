"""Decision tracing: "why was this syscall dropped (or allowed)?".

An opt-in, per-mediation record of the engine's walk — which pipeline
stages ran, which chains were visited, which rules were evaluated and
which predicate killed each miss, which context fields were collected
versus served from the per-process cache, and the final verdict.  The
stage names (``fast_path``, ``decision_cache``, ``context``,
``chain_walk``, ``verdict``) are the "Mediation pipeline" stages of
``docs/INTERNALS.md``; the full record schema is documented in
``docs/OBSERVABILITY.md``.

Tracing is off by default (``ProcessFirewall.tracer is None``) and the
engine's hot path pays only ``is None`` checks; enabling it
(``firewall.enable_tracing()``) must not change any verdict, counter,
or log record — the differential harness pins that.
"""

from __future__ import annotations

from collections import deque

#: Pipeline stage names, matching docs/INTERNALS.md.
STAGE_FAST_PATH = "fast_path"
STAGE_DECISION_CACHE = "decision_cache"
STAGE_CONTEXT = "context"
STAGE_CHAIN_WALK = "chain_walk"
STAGE_VERDICT = "verdict"

#: How a context field reached the frame (trace ``context`` values).
FIELD_COLLECTED = "collected"
FIELD_CACHED = "cached"


class RuleEval:
    """One evaluated rule within a chain visit.

    Attributes:
        rule: the rule's ``pftables`` text.
        result: ``"matched"`` or ``"miss"``.
        failed_match: rendered text of the first predicate that
            rejected the rule (``None`` for matches).
        target: the rendered target, for matched rules.
        verdict: the traversal verdict the target returned, if any.
    """

    __slots__ = ("rule", "result", "failed_match", "target", "verdict")

    def __init__(self, rule, result, failed_match=None, target=None, verdict=None):
        self.rule = rule
        self.result = result
        self.failed_match = failed_match
        self.target = target
        self.verdict = verdict

    def as_dict(self):
        """The evaluation as a plain dict (trace-record shape)."""
        return {
            "rule": self.rule,
            "result": self.result,
            "failed_match": self.failed_match,
            "target": self.target,
            "verdict": self.verdict,
        }


class ChainVisit:
    """One chain the traversal entered, with its rule evaluations."""

    __slots__ = ("table", "chain", "rules")

    def __init__(self, table, chain):
        self.table = table
        self.chain = chain
        self.rules = []

    def as_dict(self):
        """The visit as a plain dict (trace-record shape)."""
        return {
            "table": self.table,
            "chain": self.chain,
            "rules": [r.as_dict() for r in self.rules],
        }


class DecisionTrace:
    """The full record of one mediation through the engine pipeline."""

    __slots__ = (
        "seq",
        "op",
        "syscall",
        "pid",
        "comm",
        "label",
        "path",
        "stages",
        "decision_cache",
        "context",
        "chains",
        "verdict",
        "rule",
    )

    def __init__(self, seq, operation):
        self.seq = seq
        self.op = operation.op.value
        self.syscall = operation.syscall
        proc = operation.proc
        self.pid = proc.pid if proc is not None else None
        self.comm = proc.comm if proc is not None else None
        self.label = proc.label if proc is not None else None
        self.path = operation.path
        #: Pipeline stages this mediation actually entered, in order.
        self.stages = []
        #: Decision-cache probe outcome: ``"off"``, ``"miss"``,
        #: ``"hit"`` (entrypoint-independent) or ``"hit-entrypoint"``.
        self.decision_cache = "off"
        #: field name -> :data:`FIELD_COLLECTED` | :data:`FIELD_CACHED`,
        #: recorded at the field's *first* use in this mediation.
        self.context = {}
        self.chains = []
        self.verdict = None
        #: Matching rule text for DROP verdicts.
        self.rule = None

    # ------------------------------------------------------------------
    # recording hooks (called by the engine)
    # ------------------------------------------------------------------

    def enter_stage(self, stage):
        """Append a pipeline stage (idempotent per stage)."""
        if not self.stages or self.stages[-1] != stage:
            if stage not in self.stages:
                self.stages.append(stage)

    def note_field(self, field_name, source):
        """Record how a context field reached the frame (first use wins)."""
        self.enter_stage(STAGE_CONTEXT)
        if field_name not in self.context:
            self.context[field_name] = source

    def begin_chain(self, table_name, chain_name):
        """Open a chain visit; returns it for rule-evaluation appends."""
        self.enter_stage(STAGE_CHAIN_WALK)
        visit = ChainVisit(table_name, chain_name)
        self.chains.append(visit)
        return visit

    def finish(self, verdict, rule=None):
        """Seal the trace with the final verdict (and DROP rule text)."""
        self.enter_stage(STAGE_VERDICT)
        self.verdict = verdict
        self.rule = rule.text if rule is not None else None

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------

    def consumed_fields(self):
        """Names of every context field this mediation consulted."""
        return sorted(self.context)

    def as_dict(self):
        """The trace as one JSON-ready dict (docs/OBSERVABILITY.md schema)."""
        return {
            "seq": self.seq,
            "op": self.op,
            "syscall": self.syscall,
            "pid": self.pid,
            "comm": self.comm,
            "label": self.label,
            "path": self.path,
            "stages": list(self.stages),
            "decision_cache": self.decision_cache,
            "context": dict(self.context),
            "chains": [c.as_dict() for c in self.chains],
            "verdict": self.verdict,
            "rule": self.rule,
        }

    def render(self):
        """Multi-line human rendering (the ``pfctl explain`` output)."""
        head = "#{} {} {} pid={} comm={} label={}".format(
            self.seq, self.verdict or "?", self.op, self.pid, self.comm, self.label)
        if self.path is not None:
            head += " path={}".format(self.path)
        lines = [head, "  stages: {}".format(" -> ".join(self.stages) or "-")]
        if self.decision_cache != "off":
            lines.append("  decision_cache: {}".format(self.decision_cache))
        if self.context:
            lines.append("  context: " + ", ".join(
                "{}={}".format(name, src) for name, src in sorted(self.context.items())))
        for visit in self.chains:
            lines.append("  chain {}/{}:".format(visit.table, visit.chain))
            for ev in visit.rules:
                if ev.result == "matched":
                    lines.append("    MATCH {}  => {}".format(ev.rule, ev.verdict or ev.target))
                else:
                    lines.append("    miss  {}  (failed: {})".format(ev.rule, ev.failed_match))
        if self.verdict == "DROP":
            lines.append("  DROPPED by: {}".format(self.rule))
        else:
            lines.append("  allowed (verdict: {})".format(self.verdict))
        return "\n".join(lines)

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<DecisionTrace #{} {} {}>".format(self.seq, self.op, self.verdict)


class Tracer:
    """Bounded store of :class:`DecisionTrace` records (newest kept).

    Installed on a firewall via ``firewall.enable_tracing()``; the
    engine calls :meth:`begin` once per mediation and mutates the
    returned trace in place, so the ring always holds complete records
    once a mediation returns.
    """

    def __init__(self, capacity=256):
        if capacity < 1:
            raise ValueError("Tracer capacity must be >= 1")
        self.capacity = capacity
        self.traces = deque(maxlen=capacity)
        self._next_seq = 0

    def begin(self, operation):
        """Open (and retain) a new trace for one mediation."""
        trace = DecisionTrace(self._next_seq, operation)
        self._next_seq += 1
        self.traces.append(trace)
        return trace

    def last(self):
        """The most recent trace, or ``None``."""
        return self.traces[-1] if self.traces else None

    def drops(self):
        """Every retained trace that ended in a DROP."""
        return [t for t in self.traces if t.verdict == "DROP"]

    def for_op(self, op_name):
        """Retained traces for one LSM operation name."""
        return [t for t in self.traces if t.op == op_name]

    def clear(self):
        """Discard retained traces (sequence numbering continues)."""
        self.traces.clear()

    def __len__(self):
        return len(self.traces)

    def __iter__(self):
        return iter(list(self.traces))
