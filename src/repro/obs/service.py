"""Service-mode observability: admission, backpressure, and tail latency.

The live mediation service (:mod:`repro.service`) is judged on
*steady-state* behaviour — sustained throughput and the latency tail —
so its driver keeps one :class:`ServiceCounters` per run: admission
outcomes (admitted / completed / rejected / errored), high-water marks
for the pending queue and in-flight window (the backpressure
signature), and a bounded reservoir of per-mediation latency samples
from which the p50/p99 the benchmark reports are computed.

The reservoir is *windowed*, not sampled: it keeps the most recent
``capacity`` samples.  Steady-state percentiles should describe the
converged regime, and a bounded window both caps memory over unbounded
streams and naturally forgets cold-start samples.

:class:`WireCounters` is the data-plane companion: every endpoint of
the service wire path (the driver's pool and each worker's serve loop)
keeps one, tallying frames and bytes by direction and frame kind,
sessions carried per direction, and codec CPU time — the raw material
of the ``pf_service_wire_*`` metric family and the benchmark's
bytes-per-session / sessions-per-frame columns.  Both wire protocols
feed it (``v0``'s pickle transport is byte-accounted too), so the
protocol comparison in ``BENCH_service.json`` is measured, not
estimated.
"""

from __future__ import annotations

from collections import deque

#: Default bound of the latency reservoir (samples, not sessions).
DEFAULT_RESERVOIR = 65536


def percentile(samples, p):
    """The ``p``-th percentile of ``samples`` (nearest-rank, p in 0-100).

    Returns ``None`` for an empty sample set — a run that mediated
    nothing has no latency distribution, and the benchmark emitter
    treats that as a hole, not a zero.
    """
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round((p / 100.0) * len(ordered))) - 1))
    if p <= 0:
        rank = 0
    return ordered[rank]


class ServiceCounters:
    """Admission/backpressure counters + a bounded latency reservoir.

    Single-writer by construction (one instance lives in the driver
    process; workers report latency samples back in their result
    payloads), so plain attributes suffice.
    """

    def __init__(self, reservoir=DEFAULT_RESERVOIR):
        #: Sessions handed to a worker (or inline runner).
        self.admitted = 0
        #: Sessions that ran to completion (their result was merged).
        self.completed = 0
        #: Sessions refused at admission because the pending queue was
        #: full — the open-loop backpressure signal.
        self.rejected = 0
        #: Sessions that died in a worker (driver re-raises; counted
        #: so a partial run's snapshot still shows the loss).
        self.errors = 0
        #: High-water mark of the arrival (pending) queue.
        self.queue_depth_peak = 0
        #: High-water mark of sessions running concurrently in workers.
        self.inflight_peak = 0
        self._latencies = deque(maxlen=reservoir)

    def observe_queue(self, depth):
        """Record the pending-queue depth after an arrival batch."""
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def observe_inflight(self, depth):
        """Record the in-flight session count after a submit."""
        if depth > self.inflight_peak:
            self.inflight_peak = depth

    def observe_latencies(self, samples):
        """Fold a completed session's mediation-latency samples in."""
        self._latencies.extend(samples)

    @property
    def latency_samples(self):
        """The retained (windowed) latency samples, oldest first."""
        return list(self._latencies)

    def latency_percentiles(self, points=(50, 99)):
        """``{"p50": ..., "p99": ...}`` over the retained window."""
        samples = sorted(self._latencies)
        return {"p{}".format(p): percentile(samples, p) for p in points}

    def as_dict(self):
        """Picklable snapshot (counters + percentiles, not raw samples)."""
        out = {
            "admitted": self.admitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "queue_depth_peak": self.queue_depth_peak,
            "inflight_peak": self.inflight_peak,
            "latency_samples_retained": len(self._latencies),
        }
        out.update(self.latency_percentiles())
        return out


class WireCounters:
    """Per-endpoint tallies of service wire traffic.

    One instance per wire endpoint — the driver-side pool and each
    worker's serve loop.  ``tx``/``rx`` are always from the owning
    endpoint's point of view (a driver ``tx`` run frame is a worker
    ``rx`` run frame), which is why :meth:`to_metrics` stamps an
    ``endpoint`` label: the families stay additive under merge without
    double-counting a frame as both sides of the same pipe.
    """

    def __init__(self):
        #: Frame counts by direction then frame-kind name.
        self.frames = {"tx": {}, "rx": {}}
        #: Total frame bytes (header + records) by direction.
        self.bytes = {"tx": 0, "rx": 0}
        #: Sessions carried inside run/result frames, by direction.
        self.sessions = {"tx": 0, "rx": 0}
        #: CPU seconds spent encoding outbound records.
        self.encode_s = 0.0
        #: CPU seconds spent decoding inbound records.
        self.decode_s = 0.0

    def observe_frame(self, direction, kind, nbytes, sessions=0):
        """Record one frame: ``direction`` ``"tx"``/``"rx"``, ``kind``
        a frame-kind name, ``nbytes`` its full wire size, ``sessions``
        the session records it carried (run/result frames)."""
        kinds = self.frames[direction]
        kinds[kind] = kinds.get(kind, 0) + 1
        self.bytes[direction] += nbytes
        self.sessions[direction] += sessions

    def observe_encode(self, seconds):
        """Add encode-side codec CPU time."""
        self.encode_s += seconds

    def observe_decode(self, seconds):
        """Add decode-side codec CPU time."""
        self.decode_s += seconds

    def as_dict(self):
        """Picklable snapshot (ships in worker snapshots, merges via
        :meth:`merge`)."""
        return {
            "frames": {d: dict(kinds) for d, kinds in self.frames.items()},
            "bytes": dict(self.bytes),
            "sessions": dict(self.sessions),
            "encode_s": self.encode_s,
            "decode_s": self.decode_s,
        }

    def merge(self, other):
        """Fold another endpoint's tallies in (associative).

        ``other`` may be a :class:`WireCounters` or an
        :meth:`as_dict` snapshot — worker snapshots cross the spawn
        boundary as dicts.
        """
        snap = other.as_dict() if isinstance(other, WireCounters) else other
        for direction, kinds in snap["frames"].items():
            mine = self.frames.setdefault(direction, {})
            for kind, count in kinds.items():
                mine[kind] = mine.get(kind, 0) + count
        for direction, total in snap["bytes"].items():
            self.bytes[direction] = self.bytes.get(direction, 0) + total
        for direction, total in snap["sessions"].items():
            self.sessions[direction] = self.sessions.get(direction, 0) + total
        self.encode_s += snap["encode_s"]
        self.decode_s += snap["decode_s"]
        return self

    def to_metrics(self, registry, endpoint):
        """Emit the ``pf_service_wire_*`` families into ``registry``.

        ``endpoint`` labels whose side of the pipe these tallies
        describe (``"driver"`` or ``"worker"``) so merged registries
        stay double-count-free.  Families: ``pf_service_wire_frames_total``
        ``{endpoint,dir,kind}``, ``pf_service_wire_bytes_total`` and
        ``pf_service_wire_sessions_total`` ``{endpoint,dir}``, and
        ``pf_service_wire_codec_seconds_total`` ``{endpoint,op}``.
        """
        for direction, kinds in sorted(self.frames.items()):
            for kind, count in sorted(kinds.items()):
                registry.inc(
                    "pf_service_wire_frames_total",
                    {"endpoint": endpoint, "dir": direction, "kind": kind},
                    count,
                )
        for direction, total in sorted(self.bytes.items()):
            if total:
                registry.inc(
                    "pf_service_wire_bytes_total",
                    {"endpoint": endpoint, "dir": direction}, total,
                )
        for direction, total in sorted(self.sessions.items()):
            if total:
                registry.inc(
                    "pf_service_wire_sessions_total",
                    {"endpoint": endpoint, "dir": direction}, total,
                )
        for op, seconds in (("encode", self.encode_s), ("decode", self.decode_s)):
            if seconds:
                registry.inc(
                    "pf_service_wire_codec_seconds_total",
                    {"endpoint": endpoint, "op": op}, seconds,
                )
