"""Service-mode observability: admission, backpressure, and tail latency.

The live mediation service (:mod:`repro.service`) is judged on
*steady-state* behaviour — sustained throughput and the latency tail —
so its driver keeps one :class:`ServiceCounters` per run: admission
outcomes (admitted / completed / rejected / errored), high-water marks
for the pending queue and in-flight window (the backpressure
signature), and a bounded reservoir of per-mediation latency samples
from which the p50/p99 the benchmark reports are computed.

The reservoir is *windowed*, not sampled: it keeps the most recent
``capacity`` samples.  Steady-state percentiles should describe the
converged regime, and a bounded window both caps memory over unbounded
streams and naturally forgets cold-start samples.
"""

from __future__ import annotations

from collections import deque

#: Default bound of the latency reservoir (samples, not sessions).
DEFAULT_RESERVOIR = 65536


def percentile(samples, p):
    """The ``p``-th percentile of ``samples`` (nearest-rank, p in 0-100).

    Returns ``None`` for an empty sample set — a run that mediated
    nothing has no latency distribution, and the benchmark emitter
    treats that as a hole, not a zero.
    """
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round((p / 100.0) * len(ordered))) - 1))
    if p <= 0:
        rank = 0
    return ordered[rank]


class ServiceCounters:
    """Admission/backpressure counters + a bounded latency reservoir.

    Single-writer by construction (one instance lives in the driver
    process; workers report latency samples back in their result
    payloads), so plain attributes suffice.
    """

    def __init__(self, reservoir=DEFAULT_RESERVOIR):
        #: Sessions handed to a worker (or inline runner).
        self.admitted = 0
        #: Sessions that ran to completion (their result was merged).
        self.completed = 0
        #: Sessions refused at admission because the pending queue was
        #: full — the open-loop backpressure signal.
        self.rejected = 0
        #: Sessions that died in a worker (driver re-raises; counted
        #: so a partial run's snapshot still shows the loss).
        self.errors = 0
        #: High-water mark of the arrival (pending) queue.
        self.queue_depth_peak = 0
        #: High-water mark of sessions running concurrently in workers.
        self.inflight_peak = 0
        self._latencies = deque(maxlen=reservoir)

    def observe_queue(self, depth):
        """Record the pending-queue depth after an arrival batch."""
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def observe_inflight(self, depth):
        """Record the in-flight session count after a submit."""
        if depth > self.inflight_peak:
            self.inflight_peak = depth

    def observe_latencies(self, samples):
        """Fold a completed session's mediation-latency samples in."""
        self._latencies.extend(samples)

    @property
    def latency_samples(self):
        """The retained (windowed) latency samples, oldest first."""
        return list(self._latencies)

    def latency_percentiles(self, points=(50, 99)):
        """``{"p50": ..., "p99": ...}`` over the retained window."""
        samples = sorted(self._latencies)
        return {"p{}".format(p): percentile(samples, p) for p in points}

    def as_dict(self):
        """Picklable snapshot (counters + percentiles, not raw samples)."""
        out = {
            "admitted": self.admitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "queue_depth_peak": self.queue_depth_peak,
            "inflight_peak": self.inflight_peak,
            "latency_samples_retained": len(self._latencies),
        }
        out.update(self.latency_percentiles())
        return out
