"""``repro.obs`` — the mediation observability layer.

Three pieces, all threaded through :class:`repro.firewall.engine.ProcessFirewall`:

- :mod:`repro.obs.trace` — opt-in per-mediation **decision traces**
  (chains visited, rules evaluated with the failing predicate per miss,
  context fields collected vs cache-served, final verdict), retrievable
  as dicts and renderable as text (``pfctl explain``).
- :mod:`repro.obs.metrics` — a **metrics registry** of per-rule /
  per-chain / per-table counters and engine phase timers behind a
  near-zero-cost disabled path, exportable as JSON and Prometheus text.
- :mod:`repro.obs.audit` — a bounded **audit ring buffer** with
  severity levels, replacing the unbounded ``log_records`` list (now a
  *deprecated* compatibility view — see ``docs/INTERNALS.md``, "Compat
  shims and their removal plan").
- :mod:`repro.obs.service` — **service-mode counters**: admission /
  completion / rejection tallies, queue and inflight peaks, and a
  bounded latency reservoir with nearest-rank percentiles.

Schema and overhead numbers: ``docs/OBSERVABILITY.md``.
"""

from repro.obs.audit import (
    DEBUG,
    ERROR,
    INFO,
    SEVERITY_LEVELS,
    WARNING,
    AuditEntry,
    AuditRing,
    severity_level,
    severity_name,
)
from repro.obs.metrics import (
    MetricsRegistry,
    parse_prometheus,
    registry_from_prometheus,
)
from repro.obs.service import ServiceCounters, WireCounters, percentile
from repro.obs.trace import ChainVisit, DecisionTrace, RuleEval, Tracer

__all__ = [
    "AuditEntry",
    "AuditRing",
    "ChainVisit",
    "DEBUG",
    "DecisionTrace",
    "ERROR",
    "INFO",
    "MetricsRegistry",
    "RuleEval",
    "SEVERITY_LEVELS",
    "ServiceCounters",
    "Tracer",
    "WARNING",
    "WireCounters",
    "parse_prometheus",
    "percentile",
    "registry_from_prometheus",
    "severity_level",
    "severity_name",
]
