"""Errno-style exception hierarchy for the simulated kernel.

Every failure surfaced by a simulated syscall is raised as a
:class:`KernelError` subclass carrying a symbolic errno name.  Programs in
:mod:`repro.programs` catch these the way C programs test ``errno``; the
Process Firewall reports denials as :class:`PFDenied`, which deliberately
reuses ``EACCES`` so that protected programs cannot distinguish a firewall
drop from an ordinary permission failure (matching the paper's design,
where the PF verdict is returned through the LSM authorization path).
"""

from __future__ import annotations


class KernelError(Exception):
    """Base class for simulated-kernel failures.

    Attributes:
        errno_name: the symbolic errno (``"ENOENT"``, ``"EACCES"``, ...).
    """

    errno_name = "EIO"

    def __init__(self, message: str = ""):
        super().__init__(message or self.errno_name)
        self.message = message or self.errno_name

    def __repr__(self):  # pragma: no cover - debugging aid
        return "{}({!r})".format(type(self).__name__, self.message)


class ENOENT(KernelError):
    """No such file or directory."""

    errno_name = "ENOENT"


class EEXIST(KernelError):
    """File exists."""

    errno_name = "EEXIST"


class ENOTDIR(KernelError):
    """A path component is not a directory."""

    errno_name = "ENOTDIR"


class EISDIR(KernelError):
    """Target is a directory (e.g. open for write on a directory)."""

    errno_name = "EISDIR"


class EACCES(KernelError):
    """Permission denied by DAC, MAC, or the Process Firewall."""

    errno_name = "EACCES"


class EPERM(KernelError):
    """Operation not permitted (ownership / capability failures)."""

    errno_name = "EPERM"


class ELOOP(KernelError):
    """Too many levels of symbolic links, or O_NOFOLLOW hit a link."""

    errno_name = "ELOOP"


class EBADF(KernelError):
    """Bad file descriptor."""

    errno_name = "EBADF"


class EINVAL(KernelError):
    """Invalid argument."""

    errno_name = "EINVAL"


class ENOTEMPTY(KernelError):
    """Directory not empty."""

    errno_name = "ENOTEMPTY"


class ESRCH(KernelError):
    """No such process."""

    errno_name = "ESRCH"


class EADDRINUSE(KernelError):
    """Address already in use (socket bind on a squatted path)."""

    errno_name = "EADDRINUSE"


class ECONNREFUSED(KernelError):
    """Connection refused (no listener bound at the socket path)."""

    errno_name = "ECONNREFUSED"


class ENOSYS(KernelError):
    """Syscall not implemented."""

    errno_name = "ENOSYS"


class EMFILE(KernelError):
    """Per-process file descriptor table is full."""

    errno_name = "EMFILE"


class ENAMETOOLONG(KernelError):
    """Pathname or component exceeds the configured limits."""

    errno_name = "ENAMETOOLONG"


class EFAULT(KernelError):
    """Bad address (malformed userspace data, e.g. a forged stack)."""

    errno_name = "EFAULT"


class PFDenied(EACCES):
    """Raised when the Process Firewall drops a resource access.

    Subclasses :class:`EACCES` so victim programs observe an ordinary
    permission error, but tests and the audit trail can distinguish
    firewall drops from access-control denials.

    Attributes:
        rule: the :class:`repro.firewall.rule.Rule` that matched, if any.
    """

    def __init__(self, message: str = "", rule=None):
        super().__init__(message or "blocked by process firewall")
        self.rule = rule


class PFTablesStale(EINVAL):
    """A serialized flat-table artifact does not match the live rules.

    Raised by :func:`repro.firewall.tables.load_tables` when the
    artifact's format/version, rule digest, TCB snapshots, or rule
    coordinates disagree with the installed rule base.  A stale
    artifact is never silently used — callers must recompile.  Not
    registered in :data:`ERRNO_BY_NAME` (that table maps errno *names*,
    and ``EINVAL`` already owns this one).
    """


#: Map of errno names to exception classes, for audit-log round-trips.
ERRNO_BY_NAME = {
    cls.errno_name: cls
    for cls in [
        KernelError,
        ENOENT,
        EEXIST,
        ENOTDIR,
        EISDIR,
        EACCES,
        EPERM,
        ELOOP,
        EBADF,
        EINVAL,
        ENOTEMPTY,
        ESRCH,
        EADDRINUSE,
        ECONNREFUSED,
        ENOSYS,
        EMFILE,
        ENAMETOOLONG,
        EFAULT,
    ]
}
