"""The simulated kernel: composition root for the whole substrate.

A :class:`Kernel` owns the filesystem, the process table, the security
modules, and (optionally) a Process Firewall.  Mediation order follows
the paper's Figure 2 exactly:

    syscall -> DAC -> LSM modules (SELinux) -> Process Firewall -> resource

The firewall is attached with :meth:`Kernel.attach_firewall`; when no
firewall is attached the kernel behaves like a stock system (the
"Without PF" / DISABLED baselines of Tables 6-7).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from repro import errors
from repro.clock import LogicalClock
from repro.proc.process import Credentials, Process
from repro.proc.stack import BinaryImage
from repro.security.adversary import AdversaryModel
from repro.security.dac import dac_check
from repro.security.lsm import LSMDispatcher, Op, Operation
from repro.security.selinux import SELinuxModule
from repro.syscalls.api import SyscallAPI
from repro.vfs.dcache import Dcache, GenerationSources
from repro.vfs.filesystem import FileSystem
from repro.vfs.inode import FileType
from repro.vfs.namei import PathWalker, split_path


class AuditRecord:
    """One entry of the kernel audit trail."""

    __slots__ = ("time", "pid", "comm", "op", "path", "decision", "detail")

    def __init__(self, time, pid, comm, op, path, decision, detail=""):
        self.time = time
        self.pid = pid
        self.comm = comm
        self.op = op
        self.path = path
        self.decision = decision  # "allow" | "deny" | "pf_drop"
        self.detail = detail

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<Audit t={} pid={} {} {} -> {}>".format(self.time, self.pid, self.op, self.path, self.decision)


class AuditTrail:
    """A bounded audit store with a list-style surface.

    Backed by :class:`collections.deque` with ``maxlen``, so hitting the
    bound discards the oldest record in O(1) instead of the old
    "delete the oldest half" O(n) compaction.  Consumers that iterate,
    index, slice, or compare against plain lists keep working.
    """

    __slots__ = ("_dq",)

    def __init__(self, limit):
        self._dq = deque(maxlen=limit)

    @property
    def limit(self):
        return self._dq.maxlen

    def set_limit(self, limit):
        """Rebind the bound, keeping the newest ``limit`` records."""
        self._dq = deque(self._dq, maxlen=limit)

    def append(self, record):
        self._dq.append(record)

    def clear(self):
        self._dq.clear()

    def __len__(self):
        return len(self._dq)

    def __iter__(self):
        return iter(self._dq)

    def __bool__(self):
        return bool(self._dq)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._dq)[index]
        return self._dq[index]

    def __eq__(self, other):
        if isinstance(other, AuditTrail):
            return list(self._dq) == list(other._dq)
        if isinstance(other, (list, tuple, deque)):
            return list(self._dq) == list(other)
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<AuditTrail {}/{} records>".format(len(self._dq), self._dq.maxlen)


class KernelStats:
    """Counters used by the benchmark harness."""

    def __init__(self):
        self.syscalls = {}  # type: Dict[str, int]
        self.mediations = 0
        self.pf_invocations = 0
        self.pf_drops = 0

    def count_syscall(self, name):
        self.syscalls[name] = self.syscalls.get(name, 0) + 1

    @property
    def total_syscalls(self):
        return sum(self.syscalls.values())


class Kernel:
    """The simulated operating system."""

    def __init__(self, policy=None, enforcing_mac=None):
        self.clock = LogicalClock()
        self.fs = FileSystem(device=8, clock=self.clock)
        self.lsm = LSMDispatcher()
        self.adversaries = AdversaryModel(policy=policy)
        #: The invalidation-stamp sources shared by the dentry/walk
        #: caches and the firewall's resource-context cache.
        self.generations = GenerationSources(self.fs, self.adversaries)
        #: Fast-path name resolution (see :mod:`repro.vfs.dcache`).
        #: On by default; flip ``kernel.dcache.enabled`` (or pass
        #: ``Session(dcache=False)``) to force every walk cold.
        self.dcache = self.fs.attach_dcache(Dcache(self.generations))
        self.walker = PathWalker(self.fs, dcache=self.dcache)
        self.selinux = None  # type: Optional[SELinuxModule]
        if policy is not None:
            if enforcing_mac is not None:
                policy.enforcing = enforcing_mac
            self.selinux = SELinuxModule(policy)
            self.lsm.register(self.selinux)
        self.firewall = None  # attached later; kept out of LSM list so
        # ordering (authorize first, PF second) is structural.
        self.processes = {}  # type: Dict[int, Process]
        self._next_pid = 1
        #: Audit can be disabled (benchmarks) or bounded; the deque-backed
        #: trail drops the oldest record once ``audit_limit`` is reached.
        self.audit = AuditTrail(200000)
        self.audit_enabled = True
        self.stats = KernelStats()
        #: How ``fork`` propagates the per-process firewall state bundle:
        #: ``"cow"`` (default) shares it structurally with copy-on-first-
        #: mutation; ``"eager"`` deep-copies at fork time — the measured
        #: baseline of ``bench_fork_scale`` and the reference side of the
        #: fork/exec differential suite.
        self.fork_state_mode = "cow"
        self.sys = SyscallAPI(self)
        #: Monotonic per-kernel syscall sequence; each in-flight syscall
        #: gets one, and firewall context caching keys off it.
        self._syscall_seq = 0

    @property
    def audit_limit(self):
        """Bound on retained audit records (settable; rebuilds the deque)."""
        return self.audit.limit

    @audit_limit.setter
    def audit_limit(self, limit):
        self.audit.set_limit(limit)

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------

    def spawn(
        self,
        comm,
        uid=0,
        gid=None,
        label="unconfined_t",
        binary_path=None,
        cwd="/",
        env=None,
        argv=None,
        interpreter=None,
    ):
        """Create a process, registering its UID with the adversary model."""
        gid = uid if gid is None else gid
        pid = self._next_pid
        self._next_pid += 1
        binary = None
        if binary_path:
            binary = BinaryImage(binary_path, interpreter=interpreter)
        cwd_inode = self.walker.resolve(cwd).inode if cwd else self.fs.root
        proc = Process(
            pid,
            comm,
            creds=Credentials(uid=uid, gid=gid),
            label=label,
            binary=binary,
            cwd=cwd_inode,
            env=env,
            argv=argv,
        )
        self.processes[pid] = proc
        self.adversaries.register_uid(uid)
        return proc

    def reap(self, proc):
        """Remove an exited process from the table."""
        self.processes.pop(proc.pid, None)

    def get_process(self, pid):
        try:
            return self.processes[pid]
        except KeyError:
            raise errors.ESRCH("pid {}".format(pid))

    # ------------------------------------------------------------------
    # firewall attachment
    # ------------------------------------------------------------------

    def attach_firewall(self, firewall):
        """Install a Process Firewall behind the authorization layer."""
        self.firewall = firewall
        firewall.kernel = self
        return firewall

    def detach_firewall(self):
        self.firewall = None

    # ------------------------------------------------------------------
    # mediation (Figure 2, steps 1-5)
    # ------------------------------------------------------------------

    def begin_syscall(self, proc, name, args=()):
        """Tick the clock, account, and run the ``syscallbegin`` chain."""
        self.clock.tick()
        self.stats.count_syscall(name)
        self._syscall_seq += 1
        seq = self._syscall_seq
        if self.firewall is not None:
            operation = Operation(proc, Op.SYSCALL_BEGIN, obj=None, path=None, syscall=name, args=(name,) + tuple(args))
            operation.extra["syscall_seq"] = seq
            self.firewall.mediate(operation)
        return seq

    def mediate(self, operation, want=None, audit_path=None):
        """Authorize one resource access: DAC -> MAC -> Process Firewall.

        Args:
            operation: the :class:`Operation` to authorize.
            want: optional DAC permission ("r"/"w"/"x") to check against
                the object inode before the LSM modules run.
            audit_path: override for the audit-trail path field.

        Raises:
            EACCES / PFDenied on denial (already recorded in the audit).
        """
        self.stats.mediations += 1
        path = audit_path or operation.path
        try:
            if want is not None and operation.obj is not None:
                dac_check(operation.proc.creds, operation.obj, want)
            self.lsm.authorize(operation)
        except errors.KernelError as exc:
            self._audit(operation, path, "deny", exc.message)
            raise
        if self.firewall is not None:
            try:
                self.firewall.mediate(operation)
            except errors.PFDenied as exc:
                self.stats.pf_drops += 1
                self._audit(operation, path, "pf_drop", exc.message)
                raise
        self._audit(operation, path, "allow")

    def _audit(self, operation, path, decision, detail=""):
        if not self.audit_enabled:
            return
        self.audit.append(
            AuditRecord(
                self.clock.now(),
                operation.proc.pid if operation.proc else 0,
                operation.proc.comm if operation.proc else "?",
                operation.op.value,
                path,
                decision,
                detail,
            )
        )

    # ------------------------------------------------------------------
    # convenience setup helpers (used everywhere in tests/benchmarks)
    # ------------------------------------------------------------------

    def mkdirs(self, path, uid=0, gid=None, mode=0o755, label=None):
        """Create a directory path (like ``mkdir -p``), returning the leaf."""
        gid = uid if gid is None else gid
        current = self.fs.root
        for name in split_path(path):
            if self.fs.exists(current, name):
                current = self.fs.lookup(current, name)
                if not current.is_dir:
                    raise errors.ENOTDIR(path)
            else:
                current = self.fs.create(current, name, FileType.DIR, uid=uid, gid=gid, mode=mode, label=label)
        return current

    def add_file(self, path, data=b"", uid=0, gid=None, mode=0o644, label=None):
        """Create (or overwrite) a regular file at ``path``."""
        gid = uid if gid is None else gid
        resolved = self.walker.resolve(path, want_parent=True)
        if resolved.inode is not None:
            inode = resolved.inode
        else:
            inode = self.fs.create(resolved.parent, resolved.name, FileType.REG, uid=uid, gid=gid, mode=mode, label=label)
        if isinstance(data, str):
            data = data.encode("utf-8")
        inode.data = data
        if label is not None and inode.label != label:
            self.fs.relabel(inode, label)
        return inode

    def add_symlink(self, path, target, uid=0, gid=None, label=None):
        gid = uid if gid is None else gid
        resolved = self.walker.resolve(path, want_parent=True)
        return self.fs.symlink(resolved.parent, resolved.name, target, uid=uid, gid=gid, label=label)

    def lookup(self, path, follow=True):
        """Resolve a path to an inode without mediation (test helper)."""
        return self.walker.resolve(path, follow_final=follow).inode
