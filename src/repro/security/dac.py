"""UNIX discretionary access control.

Standard owner/group/other permission bits with a root (euid 0) bypass.
Also exposes :func:`writers`/:func:`readers`, which enumerate the UIDs a
policy grants access to — the primitive behind DAC adversary
accessibility.
"""

from __future__ import annotations

from repro import errors

#: Bit shifts for the three permission triads.
_OWNER_SHIFT = 6
_GROUP_SHIFT = 3
_OTHER_SHIFT = 0

_WANT_BITS = {"r": 4, "w": 2, "x": 1}


def _triad(mode, shift):
    return (mode >> shift) & 0o7


def permits(inode, euid, egid, want):
    """Return True when DAC grants ``want`` ("r"/"w"/"x") to the identity.

    Root bypasses file permission checks entirely (we do not model
    capabilities separately); execute is *not* special-cased for root
    because nothing in the reproduction depends on it.
    """
    if euid == 0:
        return True
    bit = _WANT_BITS[want]
    if inode.uid == euid:
        return bool(_triad(inode.mode, _OWNER_SHIFT) & bit)
    if inode.gid == egid:
        return bool(_triad(inode.mode, _GROUP_SHIFT) & bit)
    return bool(_triad(inode.mode, _OTHER_SHIFT) & bit)


def dac_check(creds, inode, want):
    """Raise :class:`repro.errors.EACCES` unless DAC permits the access."""
    if not permits(inode, creds.euid, creds.egid, want):
        raise errors.EACCES(
            "dac: uid {} denied {!r} on inode {} (mode {:o} uid {})".format(
                creds.euid, want, inode.ino, inode.mode, inode.uid
            )
        )


def writers(inode, known_uids):
    """UIDs among ``known_uids`` that DAC allows to write ``inode``.

    Root always writes, so it is included whenever present in
    ``known_uids``; adversary computations exclude it separately (root is
    never an adversary, footnote 2).
    """
    return {uid for uid in known_uids if permits(inode, uid, uid, "w")}


def readers(inode, known_uids):
    """UIDs among ``known_uids`` that DAC allows to read ``inode``."""
    return {uid for uid in known_uids if permits(inode, uid, uid, "r")}
