"""Access control substrate: DAC, SELinux-style MAC, LSM hooks.

The Process Firewall sits *behind* authorization (paper Figure 2): a
request must first pass DAC and the MAC policy enforced over LSM hooks;
only then is the firewall consulted.  This package provides those layers
plus the **adversary accessibility** computation (paper footnote 2) that
the firewall's resource-context module uses: a resource is adversary-
accessible when the access-control policy grants some adversary of the
current process permissions on it.
"""

from repro.security.dac import dac_check, readers, writers
from repro.security.lsm import LSMDispatcher, Op, Operation
from repro.security.selinux import SELinuxModule, SELinuxPolicy
from repro.security.adversary import AdversaryModel

__all__ = [
    "dac_check",
    "readers",
    "writers",
    "LSMDispatcher",
    "Op",
    "Operation",
    "SELinuxModule",
    "SELinuxPolicy",
    "AdversaryModel",
]
