"""LSM-style hook dispatch.

Every syscall that touches a resource builds an :class:`Operation` (the
firewall's "packet") and passes it through the :class:`LSMDispatcher`.
Registered security modules (the SELinux model, and the Process Firewall
itself as the *last* module, per Figure 2's ordering) may veto the
operation by raising.  The paper builds on LSM rather than syscall
interposition because LSM has no TOCTTOU between check and use; we get
the same property because the Operation carries the already-resolved
inode, never a re-resolvable path.
"""

from __future__ import annotations

import enum
from typing import List


class Op(enum.Enum):
    """LSM operations mediated by the simulation.

    Names follow the paper's rule language (``-o`` operand): e.g.
    ``FILE_OPEN``, ``LNK_FILE_READ``, ``UNIX_STREAM_SOCKET_CONNECT``.
    """

    FILE_OPEN = "FILE_OPEN"
    FILE_CREATE = "FILE_CREATE"
    FILE_READ = "FILE_READ"
    FILE_WRITE = "FILE_WRITE"
    FILE_GETATTR = "FILE_GETATTR"
    FILE_SETATTR = "FILE_SETATTR"
    FILE_UNLINK = "FILE_UNLINK"
    FILE_EXEC = "FILE_EXEC"
    FILE_MMAP = "FILE_MMAP"
    DIR_SEARCH = "DIR_SEARCH"
    DIR_WRITE = "DIR_WRITE"
    LNK_FILE_READ = "LNK_FILE_READ"
    LINK_READ = "LINK_READ"  # alias used by rule R8 in the paper
    SOCKET_BIND = "SOCKET_BIND"
    SOCKET_SETATTR = "SOCKET_SETATTR"
    UNIX_STREAM_SOCKET_CONNECT = "UNIX_STREAM_SOCKET_CONNECT"
    PROCESS_SIGNAL_DELIVERY = "PROCESS_SIGNAL_DELIVERY"
    SYSCALL_BEGIN = "SYSCALL_BEGIN"

    @classmethod
    def from_name(cls, name):
        """Resolve a rule-language operation name, honouring aliases."""
        name = name.upper()
        if name == "LINK_READ":
            return cls.LNK_FILE_READ
        if name == "SOCKET_CONNECT":
            return cls.UNIX_STREAM_SOCKET_CONNECT
        return cls[name]


#: SELinux object class implied by each operation, for policy lookup.
OP_CLASS = {
    Op.FILE_OPEN: "file",
    Op.FILE_CREATE: "file",
    Op.FILE_READ: "file",
    Op.FILE_WRITE: "file",
    Op.FILE_GETATTR: "file",
    Op.FILE_SETATTR: "file",
    Op.FILE_UNLINK: "file",
    Op.FILE_EXEC: "file",
    Op.FILE_MMAP: "file",
    Op.DIR_SEARCH: "dir",
    Op.DIR_WRITE: "dir",
    Op.LNK_FILE_READ: "lnk_file",
    Op.LINK_READ: "lnk_file",
    Op.SOCKET_BIND: "sock_file",
    Op.SOCKET_SETATTR: "sock_file",
    Op.UNIX_STREAM_SOCKET_CONNECT: "unix_stream_socket",
    Op.PROCESS_SIGNAL_DELIVERY: "process",
    Op.SYSCALL_BEGIN: "process",
}

#: SELinux permission implied by each operation.
OP_PERM = {
    Op.FILE_OPEN: "open",
    Op.FILE_CREATE: "create",
    Op.FILE_READ: "read",
    Op.FILE_WRITE: "write",
    Op.FILE_GETATTR: "getattr",
    Op.FILE_SETATTR: "setattr",
    Op.FILE_UNLINK: "unlink",
    Op.FILE_EXEC: "execute",
    Op.FILE_MMAP: "map",
    Op.DIR_SEARCH: "search",
    Op.DIR_WRITE: "write",
    Op.LNK_FILE_READ: "read",
    Op.LINK_READ: "read",
    Op.SOCKET_BIND: "bind",
    Op.SOCKET_SETATTR: "setattr",
    Op.UNIX_STREAM_SOCKET_CONNECT: "connectto",
    Op.PROCESS_SIGNAL_DELIVERY: "signal",
    Op.SYSCALL_BEGIN: "syscall",
}


class Operation:
    """One mediated resource access — the firewall's "packet".

    Attributes:
        proc: the requesting :class:`repro.proc.Process`.
        op: the :class:`Op`.
        obj: the resolved object — an inode, a signal number for signal
            delivery, or ``None`` (``SYSCALL_BEGIN``).
        path: best-effort pathname for audit.
        syscall: name of the invoking syscall.
        args: raw syscall arguments (for the ``SYSCALL_ARGS`` match).
        extra: op-specific context, e.g. ``link_target`` — the inode a
            traversed symlink resolves to (consumed by rule R8's
            ``COMPARE`` of link owner vs target owner).
    """

    __slots__ = ("proc", "op", "obj", "path", "syscall", "args", "extra")

    def __init__(self, proc, op, obj=None, path=None, syscall="", args=(), extra=None):
        self.proc = proc
        self.op = op
        self.obj = obj
        self.path = path
        self.syscall = syscall
        self.args = tuple(args)
        self.extra = extra or {}

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<Operation {} {} by pid {}>".format(
            self.op.value, self.path or self.obj, self.proc.pid if self.proc else "?"
        )


class LSMDispatcher:
    """Orders and runs the registered security modules.

    A module is any object with ``authorize(operation)`` that raises to
    deny.  Modules run in registration order; the Process Firewall must be
    registered last so that it only sees already-authorized requests.
    """

    def __init__(self):
        self._modules = []  # type: List[object]
        #: Count of hook invocations, used by the benchmarks' cost model.
        self.invocations = 0

    def register(self, module):
        self._modules.append(module)
        return module

    def unregister(self, module):
        self._modules.remove(module)

    def authorize(self, operation):
        """Run every module; the first raise denies the operation."""
        self.invocations += 1
        for module in self._modules:
            module.authorize(operation)
