"""Adversary accessibility (paper §2, footnote 2).

    "A resource is adversary accessible if the OS access control policy
    grants an adversary of the current process permissions to the
    resource.  In UNIX DAC, an adversary is a user with a different UID
    (except root) ... Write permissions to the resource lead to integrity
    attacks and read permissions to secrecy attacks."

The :class:`AdversaryModel` combines the DAC and MAC views:

- **DAC**: adversaries of a process are all known UIDs other than root
  and the process's own effective UID.  (Users are modelled with private
  groups, gid == uid, the common Debian/Ubuntu convention.)
- **MAC**: adversaries are all subject types outside the policy's TCB
  (SYSHIGH) set, excluding the process's own label.

A resource is *low integrity* for a process when some adversary can
write it, and *low secrecy* when some adversary can read it.  This is
the resource context consumed by firewall matches like ``-d ~{SYSHIGH}``.
"""

from __future__ import annotations

from repro.security import dac


class AdversaryModel:
    """Computes adversary accessibility against DAC + optional MAC."""

    def __init__(self, policy=None, known_uids=None):
        #: Optional :class:`repro.security.selinux.SELinuxPolicy`.
        self.policy = policy
        #: The system's user population for DAC reasoning.
        self.known_uids = set(known_uids or {0})
        #: Bumped whenever the adversary population grows: a new user
        #: is a new potential adversary for every process, so every
        #: cached accessibility answer (the engine's resource-context
        #: cache) must be recomputed.
        self.epoch = 0

    def register_uid(self, uid):
        if uid not in self.known_uids:
            self.known_uids.add(uid)
            self.epoch += 1

    # ------------------------------------------------------------------
    # DAC view
    # ------------------------------------------------------------------

    def dac_adversaries(self, proc):
        """UIDs that are adversaries of ``proc`` under DAC."""
        return {uid for uid in self.known_uids if uid != 0 and uid != proc.creds.euid}

    def dac_adversary_writable(self, proc, inode):
        advs = self.dac_adversaries(proc)
        if getattr(inode, "itype", None) is not None and inode.itype.value == "lnk":
            # Symlink inodes always carry mode 0777; what matters is who
            # can *replace* the link, which (under sticky-/tmp semantics)
            # is its owner.  Treat a link as adversary-controlled when an
            # adversary owns it.
            return inode.uid in advs
        return bool(dac.writers(inode, advs))

    def dac_adversary_readable(self, proc, inode):
        advs = self.dac_adversaries(proc)
        return bool(dac.readers(inode, advs))

    # ------------------------------------------------------------------
    # MAC view
    # ------------------------------------------------------------------

    def mac_adversaries(self, proc):
        """Subject types that are adversaries of ``proc`` under MAC."""
        if self.policy is None:
            return set()
        return {
            t
            for t in self.policy.types
            if not self.policy.is_tcb_subject(t) and t != proc.label
        }

    def _mac_access(self, proc, inode, perm):
        if self.policy is None:
            return False
        advs = self.mac_adversaries(proc)
        # Check every class the object could be accessed through; the
        # object's own class is what matters but labels are per-inode.
        for klass in ("file", "dir", "lnk_file", "sock_file", "unix_stream_socket"):
            allowed = self.policy.subjects_allowed(inode.label, klass, perm)
            if allowed & advs:
                return True
        return False

    def mac_adversary_writable(self, proc, inode):
        return self._mac_access(proc, inode, "write")

    def mac_adversary_readable(self, proc, inode):
        return self._mac_access(proc, inode, "read")

    # ------------------------------------------------------------------
    # combined view (what the firewall consumes)
    # ------------------------------------------------------------------

    def is_low_integrity(self, proc, inode):
        """True when an adversary of ``proc`` can write the resource.

        An access needs *both* DAC and MAC to grant it, so accessibility
        is the conjunction: a 0600 root-owned file in /tmp is high
        integrity even though MAC lets ``user_t`` at ``tmp_t`` objects,
        and an 0666 file labeled ``etc_t`` is high integrity on an
        SELinux system even though DAC is wide open.
        """
        if not self.dac_adversary_writable(proc, inode):
            return False
        if self.policy is None:
            return True
        return self.mac_adversary_writable(proc, inode)

    def is_low_secrecy(self, proc, inode):
        """True when an adversary of ``proc`` can read the resource."""
        if not self.dac_adversary_readable(proc, inode):
            return False
        if self.policy is None:
            return True
        return self.mac_adversary_readable(proc, inode)

    def is_high_integrity(self, proc, inode):
        return not self.is_low_integrity(proc, inode)
