"""SELinux-style mandatory access control (type enforcement subset).

We model the part of SELinux the paper actually consumes:

- **types** on subjects (process labels like ``httpd_t``) and objects
  (file labels like ``shadow_t``);
- **allow rules** ``allow(subject_type, object_type, class, perms)``;
- a **TCB set** of trusted types — the paper's ``SYSHIGH`` keyword
  (derived from the Integrity Walls work [40, 24]) naming all trusted
  computing base subjects/objects;
- enforcement over LSM hooks.

Policies are built programmatically; :func:`reference_policy` constructs
a small Ubuntu-flavoured targeted policy with the labels the paper's
rules mention (``lib_t``, ``tmp_t``, ``httpd_user_script_exec_t``, ...).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro import errors
from repro.security.lsm import OP_CLASS, OP_PERM


class SELinuxPolicy:
    """A type-enforcement policy."""

    def __init__(self, enforcing=True):
        self.enforcing = enforcing
        self.types = set()  # type: Set[str]
        #: (subject, object, class) -> set of permissions
        self._allow = {}  # type: Dict[Tuple[str, str, str], Set[str]]
        #: Trusted computing base types (the SYSHIGH set).
        self.tcb_subjects = set()  # type: Set[str]
        self.tcb_objects = set()  # type: Set[str]
        #: Reverse-lookup memo for :meth:`subjects_allowed`; invalidated
        #: on every :meth:`allow` (adversary computation is hot).
        self._subjects_memo = {}

    def declare_type(self, *names):
        self.types.update(names)

    def allow(self, subject, object_, klass, perms):
        """Grant ``perms`` (iterable of strings, or "*") on a class."""
        self.declare_type(subject, object_)
        key = (subject, object_, klass)
        bucket = self._allow.setdefault(key, set())
        if perms == "*":
            bucket.add("*")
        else:
            bucket.update(perms)
        self._subjects_memo = {}

    def allows(self, subject, object_, klass, perm):
        bucket = self._allow.get((subject, object_, klass))
        if bucket is None:
            return False
        return "*" in bucket or perm in bucket

    def mark_tcb(self, *types, **kwargs):
        """Add types to the SYSHIGH TCB set.

        By default a type is trusted both as subject and object; pass
        ``subject=False`` / ``object=False`` to restrict.
        """
        as_subject = kwargs.pop("subject", True)
        as_object = kwargs.pop("object", True)
        if kwargs:
            raise TypeError("unexpected kwargs: {}".format(sorted(kwargs)))
        self.declare_type(*types)
        if as_subject:
            self.tcb_subjects.update(types)
        if as_object:
            self.tcb_objects.update(types)

    def is_tcb_subject(self, label):
        return label in self.tcb_subjects

    def is_tcb_object(self, label):
        return label in self.tcb_objects

    def subjects_allowed(self, object_, klass, perm):
        """All subject types the policy grants ``perm`` on the object type."""
        key = (object_, klass, perm)
        cached = self._subjects_memo.get(key)
        if cached is not None:
            return cached
        out = set()
        for (subj, obj, kls), perms in self._allow.items():
            if obj == object_ and kls == klass and ("*" in perms or perm in perms):
                out.add(subj)
        self._subjects_memo[key] = out
        return out


class SELinuxModule:
    """LSM module enforcing an :class:`SELinuxPolicy`."""

    def __init__(self, policy):
        self.policy = policy
        self.denials = []  # AVC-style denial records

    def authorize(self, operation):
        if not self.policy.enforcing:
            return
        obj_label = getattr(operation.obj, "label", None)
        if obj_label is None:
            return  # non-labeled object (signals etc.)
        klass = OP_CLASS[operation.op]
        perm = OP_PERM[operation.op]
        subject = operation.proc.label
        if not self.policy.allows(subject, obj_label, klass, perm):
            self.denials.append((subject, obj_label, klass, perm, operation.path))
            raise errors.EACCES(
                "selinux: denied {{ {} }} for {} on {} ({})".format(perm, subject, obj_label, operation.path)
            )


#: Object labels the paper's rules reference, with the paths they label.
REFERENCE_LABELS = {
    "/bin": "bin_t",
    "/usr/bin": "bin_t",
    "/lib": "lib_t",
    "/usr/lib": "lib_t",
    "/usr/share": "usr_t",
    "/usr": "usr_t",
    "/etc": "etc_t",
    "/etc/passwd": "etc_t",
    "/etc/shadow": "shadow_t",
    "/tmp": "tmp_t",
    "/var": "var_t",
    "/var/www": "httpd_sys_content_t",
    "/var/run/dbus": "system_dbusd_var_run_t",
    "/home": "user_home_dir_t",
}

#: Subject labels considered part of the TCB in the reference policy.
REFERENCE_TCB_SUBJECTS = frozenset(
    {
        "init_t",
        "sshd_t",
        "httpd_t",
        "system_dbusd_t",
        "unconfined_t",
        "ld_so_t",
    }
)

#: Object labels considered high-integrity (SYSHIGH objects).
REFERENCE_TCB_OBJECTS = frozenset(
    {
        "bin_t",
        "lib_t",
        "usr_t",
        "etc_t",
        "shadow_t",
        "root_t",
        "var_t",
        "textrel_shlib_t",
        "httpd_modules_t",
        "httpd_config_t",
        "httpd_sys_content_t",
        "system_dbusd_var_run_t",
        "httpd_user_script_exec_t",
        "java_conf_t",
    }
)


def reference_policy(enforcing=True):
    """Build the small targeted policy used across tests and benchmarks.

    Trusted subjects get broad access (the paper's point is exactly that
    MAC permits too much per-syscall); the untrusted ``user_t`` subject
    gets write access to shared and user-owned locations, which is what
    makes those locations adversary-accessible.
    """
    policy = SELinuxPolicy(enforcing=enforcing)
    policy.mark_tcb(*REFERENCE_TCB_SUBJECTS, object=False)
    policy.mark_tcb(*REFERENCE_TCB_OBJECTS, subject=False)

    all_objects = set(REFERENCE_LABELS.values()) | {
        "unlabeled_t",
        "root_t",
        "tmp_t",
        "user_home_t",
        "user_tmp_t",
        "textrel_shlib_t",
        "httpd_modules_t",
        "httpd_config_t",
        "httpd_user_script_exec_t",
        "httpd_user_content_t",
        "java_conf_t",
        "shadow_t",
    }
    classes = ("file", "dir", "lnk_file", "sock_file", "unix_stream_socket", "process")

    for subject in REFERENCE_TCB_SUBJECTS:
        for obj in all_objects:
            for klass in classes:
                policy.allow(subject, obj, klass, "*")

    # The untrusted user: full control of its own and shared locations.
    user_writable = {
        "tmp_t",
        "user_home_t",
        "user_tmp_t",
        "user_home_dir_t",
        "httpd_user_content_t",
        "httpd_user_script_exec_t",
    }
    for obj in user_writable:
        for klass in classes:
            policy.allow("user_t", obj, klass, "*")
    # ... and read/execute access to most of the system (not shadow_t).
    for obj in all_objects - {"shadow_t"}:
        for klass in ("file", "dir", "lnk_file"):
            policy.allow("user_t", obj, klass, ("read", "getattr", "search", "open", "execute"))
    return policy
