"""``repro.api`` — the ``Session`` facade over world + kernel + engine + obs.

Before this module, every driver in the repo assembled its mediation
stack by hand — ``experiments.py``, ``workloads/replay.py``,
``parallel/worker.py``, the benchmarks, and ``cli.py`` each repeated
the same four steps (build a world, construct a
:class:`~repro.firewall.engine.ProcessFirewall` from some flag
spelling, attach it, install rules) with slightly different flag
plumbing.  The service driver (:mod:`repro.service`) cannot afford a
fifth copy, so construction now has one front door:

>>> from repro.api import Session
>>> session = Session(engine="JITTED", rules=safe_open_pf_rules())
>>> shell = session.spawn("sh", binary_path="/bin/sh")
>>> session.sys.open(shell, "/etc/passwd", "r")

``Session`` collapses the engine-column zoo (EPTSPC / COMPILED /
JITTED classmethods, ``EngineConfig.preset`` strings, per-benchmark
flag tuples) into a single ``engine=`` parameter, accepts rules in
every shape the repo produces (pftables lines, ``save_rules`` text,
installer callables), and owns the world-builder registry that
parallel workers previously kept privately.  The per-process lifecycle
gains an explicit reap path: :meth:`Session.reap` frees the process's
CoW firewall state (:meth:`~repro.firewall.procstate.ProcState.release`),
its descriptor table, and its pid-census entry — what service mode
calls on every session close.

The public surface is exactly ``__all__``; everything else in this
module is plumbing.
"""

from __future__ import annotations

import importlib

from repro.errors import PFDenied
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.firewall.persist import load_rules
from repro.kernel import Kernel
from repro.world import build_world

__all__ = [
    "Session",
    "WORLD_BUILDERS",
    "register_world",
    "resolve_engine",
]


def resolve_engine(engine):
    """Normalize every engine spelling to one :class:`EngineConfig`.

    ``None`` means the shipping default (EPTSPC, the paper's fully
    optimized engine); a string is a Table 6 column name resolved via
    :meth:`EngineConfig.preset` (``"JITTED"``, ``"compiled"``, ...);
    an :class:`EngineConfig` instance passes through untouched (for
    ablations that need hand-tuned switches).  Anything else raises
    ``TypeError`` so a misplaced argument fails loudly.
    """
    if engine is None:
        return EngineConfig.optimized()
    if isinstance(engine, EngineConfig):
        return engine
    if isinstance(engine, str):
        return EngineConfig.preset(engine)
    raise TypeError(
        "engine must be None, a preset name, or an EngineConfig, "
        "not {!r}".format(type(engine).__name__)
    )


#: World builders resolvable by name.  Registered by name (not by
#: callable) because parallel/service worker payloads must pickle
#: across the spawn boundary.  ``"standard"`` is the Ubuntu-flavoured
#: E-scenario world from :func:`repro.world.build_world`.
WORLD_BUILDERS = {
    "standard": build_world,
}

#: Builders resolved lazily on first use, as ``(module, attribute)``.
#: Lazy because their home modules import this one at top level — an
#: eager import here would be circular — and because a worker that
#: never replays a macro-scale world should not pay its import.
_LAZY_BUILDERS = {
    "macro_scale": ("repro.workloads.macro", "build_scale_world"),
    "service": ("repro.workloads.generators", "build_service_world"),
}


def register_world(name, builder):
    """Register ``builder`` (a callable returning a Kernel) as ``name``.

    Extension point for new workload families; the returned builder is
    what ``Session(world=name)`` and worker payloads will call.
    Re-registering a name replaces the previous builder.
    """
    WORLD_BUILDERS[name] = builder
    return builder


def _resolve_world_builder(name):
    """Builder for ``name``, importing a lazy registration on demand."""
    builder = WORLD_BUILDERS.get(name)
    if builder is None and name in _LAZY_BUILDERS:
        module_name, attr = _LAZY_BUILDERS[name]
        builder = getattr(importlib.import_module(module_name), attr)
        WORLD_BUILDERS[name] = builder
    if builder is None:
        raise ValueError("unknown world {!r} (expected one of {})".format(
            name, "/".join(sorted(set(WORLD_BUILDERS) | set(_LAZY_BUILDERS)))))
    return builder


class Session:
    """One assembled mediation stack: world + kernel + engine + obs.

    Parameters
    ----------
    engine:
        Engine column — ``None`` (EPTSPC default), a preset name
        string, or an :class:`EngineConfig` (see :func:`resolve_engine`).
    rules:
        What to install: ``None`` (no rules), a string of
        ``save_rules``/pftables text (restored atomically via
        :func:`repro.firewall.persist.load_rules`), an iterable of
        pftables lines, or a callable taking the firewall (e.g.
        :func:`repro.rulesets.generated.install_full_rulebase`).
    world:
        Where processes live — a registered builder name, a
        ``(name, kwargs)`` tuple (the picklable worker-payload shape),
        an existing :class:`~repro.kernel.Kernel` to adopt, or a
        callable returning one.
    world_kwargs:
        Extra keyword arguments for a named/callable world builder.
    metered:
        Enable the firewall's metrics registry (per-rule counters and
        phase timers; off by default, matching the engine).
    traced:
        Enable per-mediation decision traces
        (:meth:`ProcessFirewall.enable_tracing`).
    audit_capacity:
        Bound of the firewall's audit ring.
    kernel_audit:
        ``True``/``False`` forces the *kernel* audit log on or off
        (workers turn it off: it is not part of merged results);
        ``None`` keeps whatever the world builder chose.
    tables:
        Optional serialized flat-table artifact text
        (:func:`repro.firewall.tables.serialize_tables`) loaded after
        rule installation — the TABLED zero-warmup path.  The artifact
        is digest-checked against the installed rules and a mismatch
        raises :class:`repro.errors.PFTablesStale` (never silently
        ignored).
    dcache:
        ``True``/``False`` forces the kernel's fast-path name
        resolution (:mod:`repro.vfs.dcache`) on or off; ``None``
        (default) keeps the kernel default (on).  Disabling forces
        every path walk cold — the reference side of the dcache
        differential suite and benchmarks.
    """

    def __init__(
        self,
        engine=None,
        rules=None,
        world="standard",
        world_kwargs=None,
        metered=False,
        traced=False,
        audit_capacity=4096,
        kernel_audit=None,
        tables=None,
        dcache=None,
    ):
        kwargs = dict(world_kwargs or {})
        if isinstance(world, Kernel):
            if kwargs:
                raise ValueError("world_kwargs make no sense with a built Kernel")
            kernel = world
        else:
            if isinstance(world, tuple):
                name, payload_kwargs = world
                builder = _resolve_world_builder(name)
                kwargs = dict(payload_kwargs or {}) or kwargs
            elif isinstance(world, str):
                builder = _resolve_world_builder(world)
            elif callable(world):
                builder = world
            else:
                raise TypeError(
                    "world must be a name, (name, kwargs), Kernel, or "
                    "callable, not {!r}".format(type(world).__name__))
            kernel = builder(**kwargs)
        if kernel_audit is not None:
            kernel.audit_enabled = bool(kernel_audit)
        if dcache is not None:
            kernel.dcache.enabled = bool(dcache)
        #: The assembled :class:`~repro.kernel.Kernel`.
        self.kernel = kernel
        #: The attached :class:`~repro.firewall.engine.ProcessFirewall`.
        self.firewall = kernel.attach_firewall(
            ProcessFirewall(resolve_engine(engine), audit_capacity=audit_capacity)
        )
        if metered:
            self.firewall.metrics.enable()
        if traced:
            self.firewall.enable_tracing()
        if rules is not None:
            self.install(rules)
        if tables is not None:
            self.load_tables(tables)

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------

    def install(self, rules):
        """Install ``rules`` in any of the shapes the repo produces.

        A string is ``save_rules``-style text (atomic staged swap); an
        iterable is pftables lines; a callable receives the firewall
        and installs however it likes.  Returns the session for
        chaining.
        """
        if isinstance(rules, str):
            load_rules(self.firewall, rules)
        elif callable(rules):
            rules(self.firewall)
        else:
            self.firewall.install_all(list(rules))
        return self

    def compile_tables(self):
        """Ahead-of-time compile the installed rules to flat tables.

        Eagerly builds every ``(op, entrypoint)`` decision row and
        attaches the program so TABLED mediation starts warm; returns
        the serialized artifact text for :meth:`load_tables` /
        ``Session(tables=...)`` in another process.  Usable under any
        engine preset (the artifact is engine-independent), though only
        ``table_dispatch`` configurations ever dispatch through it.
        """
        from repro.firewall.tables import compile_tables, serialize_tables

        return serialize_tables(compile_tables(self.firewall))

    def load_tables(self, text):
        """Adopt a serialized flat-table artifact instead of compiling.

        Validates format, version, rule digest, and TCB snapshots
        against the live rule base — :class:`repro.errors.PFTablesStale`
        on any mismatch — then attaches the decoded program.  Returns
        the session for chaining.
        """
        from repro.firewall.tables import load_tables

        load_tables(self.firewall, text)
        return self

    # ------------------------------------------------------------------
    # convenience views
    # ------------------------------------------------------------------

    @property
    def sys(self):
        """The kernel's syscall API (``session.sys.open(proc, ...)``)."""
        return self.kernel.sys

    @property
    def stats(self):
        """The engine's :class:`~repro.firewall.engine.EngineStats`."""
        return self.firewall.stats

    @property
    def metrics(self):
        """The engine's :class:`~repro.obs.metrics.MetricsRegistry`."""
        return self.firewall.metrics

    @property
    def audit(self):
        """The engine's bounded :class:`~repro.obs.audit.AuditRing`."""
        return self.firewall.audit

    @property
    def dcache(self):
        """The kernel's :class:`~repro.vfs.dcache.Dcache` bundle."""
        return self.kernel.dcache

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------

    def spawn(self, comm, **kwargs):
        """Create a process in this session's kernel (see
        :meth:`repro.kernel.Kernel.spawn` for the keywords).

        Delegating rather than wrapping keeps a ``Session`` usable
        anywhere a kernel-shaped object is expected for spawning —
        e.g. :func:`repro.workloads.replay.spawn_recorded`.
        """
        return self.kernel.spawn(comm, **kwargs)

    def reap(self, proc):
        """Retire ``proc`` and free everything the session holds for it.

        The service-mode session-close path: closes any descriptors
        still open, marks the process dead, removes it from the pid
        census, and releases its CoW firewall state bundle
        (:meth:`~repro.firewall.procstate.ProcState.release`) so a
        reaped session pins no STATE map, decision cache, or context
        cache regardless of fork history.  No syscalls are issued and
        nothing is mediated — reaping a process that a rule just
        denied must not change the verdict stream.
        """
        for fd in list(proc.fds):
            proc.drop_fd(fd).close()
        proc.alive = False
        self.kernel.reap(proc)
        proc.pf.release()
        del proc.pf_traversal[:]
        return proc

    # ------------------------------------------------------------------
    # mediation
    # ------------------------------------------------------------------

    def mediate(self, operation):
        """Mediate one operation; returns ``"allow"`` or ``"drop"``.

        The facade's uniform verdict vocabulary (matching
        :meth:`mediate_batch`): a DROP verdict is returned, not
        raised.  Drivers that want the exception semantics call
        ``session.firewall.mediate`` directly.
        """
        try:
            self.firewall.mediate(operation)
        except PFDenied:
            return "drop"
        return "allow"

    def mediate_batch(self, operations):
        """Mediate a homogeneous run of operations; returns verdicts.

        Delegates to :meth:`ProcessFirewall.mediate_batch` — one
        ``"allow"``/``"drop"`` string per operation, amortizing the
        mediation prologue where the batched fast path applies.
        """
        return self.firewall.mediate_batch(operations)

    # ------------------------------------------------------------------
    # state export
    # ------------------------------------------------------------------

    def snapshot(self):
        """Picklable summary of the session's observable state.

        Engine stats as a dict, metrics as Prometheus text when the
        registry is enabled (``None`` otherwise), the live pid census,
        and the audit ring's next sequence number — the shape workers
        ship across process boundaries and churn tests baseline
        against.
        """
        metrics = self.firewall.metrics
        return {
            "stats": self.firewall.stats.as_dict(),
            "metrics_prom": metrics.to_prometheus() if metrics.enabled else None,
            "live_pids": sorted(self.kernel.processes),
            "audit_next_seq": self.firewall.audit.next_seq(),
        }

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<Session procs={} rules={}>".format(
            len(self.kernel.processes), self.firewall.rules.rule_count()
        )
