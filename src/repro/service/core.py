"""Per-worker session execution: admit, run, time, reap.

A :class:`SessionRunner` is the long-lived heart of one service
worker: it owns a single :class:`repro.api.Session` (world + kernel +
engine + obs, built once at worker start — the whole point of the
facade) and executes generated session specs against it one at a
time.  For each session it:

1. creates the session's private files and adversary trap
   (:func:`repro.workloads.generators.setup_session_fs` — unmediated,
   so setup cannot perturb verdicts);
2. spawns the session's root process and executes the spec's step
   tuples, timing each mediated syscall with ``perf_counter`` (the
   latency samples the benchmark's p50/p99 come from) and recording
   one ``(step index, op, status)`` verdict per step, where status is
   ``"ok"``, ``"PFDenied"``, or the errno name;
3. brackets the firewall audit ring around each step, tagging emitted
   records ``(lclock=sid, sub)`` and rewriting live pids to stable
   per-session logical ids — the same discipline as
   :mod:`repro.parallel.worker`, so merged service audit interleaves
   back to the serial shape;
4. **reaps** every process the session created
   (:meth:`repro.api.Session.reap`): descriptors closed, pid census
   entry removed, CoW firewall state released.  The churn tests pin
   that a runner's kernel returns to its pre-session census after
   every close.

Everything here is importable at module level because workers start
under the ``multiprocessing`` **spawn** context;
:func:`service_worker_entry` is the child-process main loop.
"""

from __future__ import annotations

import time
import traceback

from repro.api import Session
from repro.errors import KernelError, PFDenied
from repro.obs.audit import severity_name
from repro.parallel.merge import strip_volatile
from repro.vfs.file import OpenFlags
from repro.workloads.generators import setup_session_fs

#: Steps whose syscalls pass through firewall mediation (timed).
_MEDIATED_STEPS = frozenset(
    ("open_read", "stat", "append", "fork_exec", "trap_open")
)


class SessionRunner:
    """Executes generated session specs against one live Session.

    ``init`` is the picklable worker payload: ``engine`` (preset name
    or config), ``rules_text`` (``save_rules`` output), ``world``
    (builder name or ``(name, kwargs)``, default the service world),
    ``metered``, ``collect_audit``, ``worker_id``, and optionally
    ``tables_text`` — a serialized flat-table artifact
    (:func:`repro.firewall.tables.serialize_tables`) loaded instead of
    compiling, so TABLED workers start at zero warmup.  A stale
    artifact fails the worker loudly (:class:`repro.errors.PFTablesStale`
    ships back as a worker error), never silently degrades.
    """

    def __init__(self, init):
        self.worker_id = init.get("worker_id", 0)
        self.collect_audit = init.get("collect_audit", True)
        self.session = Session(
            engine=init.get("engine", "JITTED"),
            rules=init.get("rules_text"),
            world=init.get("world", "service"),
            metered=init.get("metered", False),
            tables=init.get("tables_text"),
        )
        #: Whether this runner adopted a pre-compiled artifact (the
        #: cold-start test asserts real workers really loaded it).
        self.tables_loaded = bool(
            init.get("tables_text") is not None
            and self.session.firewall._tables is not None
            and self.session.firewall._tables.loaded
        )
        #: Pid-census size of the idle runner; churn tests assert the
        #: census returns here after every reap.
        self.baseline_pids = len(self.session.kernel.processes)
        #: Mediation-busy CPU seconds (process_time over run_session
        #: bodies only — setup/idle excluded), the cpu-basis
        #: throughput denominator.
        self.busy_cpu = 0.0
        self.sessions_run = 0

    def run_session(self, spec):
        """Admit, execute, and reap one session; returns its result.

        The result is fully picklable: ``sid``, per-step verdicts,
        tagged+normalized audit records, per-mediated-step latency
        samples (seconds), and drop/mediation counts.
        """
        cpu_start = time.process_time()
        session = self.session
        kernel = session.kernel
        sid = spec["sid"]
        setup_session_fs(kernel, spec)
        root = session.spawn(
            spec["comm"], label=spec["label"], binary_path=spec["binary"]
        )
        procs = [root]
        logical = {root.pid: 0}
        ring = session.audit
        verdicts = []
        audit = []
        latencies = []
        drops = 0
        stats = session.stats
        mediations_before = stats.invocations
        for idx, step in enumerate(spec["steps"]):
            before = ring.next_seq()
            timed = step[0] in _MEDIATED_STEPS
            start = time.perf_counter() if timed else 0.0
            try:
                self._exec_step(root, step, procs, logical)
            except PFDenied:
                status = "PFDenied"
                drops += 1
            except KernelError as exc:
                status = exc.errno_name
            else:
                status = "ok"
            if timed:
                latencies.append(time.perf_counter() - start)
            verdicts.append((idx, step[0], status))
            emitted = ring.next_seq() - before
            if self.collect_audit and emitted:
                for entry in ring.tail(emitted):
                    audit.append({
                        "worker": self.worker_id,
                        "lclock": sid,
                        "sub": len(audit),
                        "severity": severity_name(entry.severity),
                        "kind": entry.kind,
                        "record": self._normalize(entry.record, logical),
                    })
        for proc in procs:
            if proc.pid in kernel.processes:
                session.reap(proc)
            else:
                # Exited during the session (fork_exec children):
                # already out of the census; release state only.
                proc.pf.release()
        self.busy_cpu += time.process_time() - cpu_start
        self.sessions_run += 1
        return {
            "sid": sid,
            "verdicts": verdicts,
            "audit": audit,
            "latencies": latencies,
            "mediations": stats.invocations - mediations_before,
            "drops": drops,
        }

    def _exec_step(self, root, step, procs, logical):
        """Execute one spec step tuple against the live kernel."""
        sys = self.session.sys
        kind = step[0]
        if kind == "open_read" or kind == "trap_open":
            fd = sys.open(root, step[1])
            sys.read(root, fd)
            sys.close(root, fd)
        elif kind == "stat":
            sys.stat(root, step[1])
        elif kind == "getpid":
            sys.getpid(root)
        elif kind == "append":
            fd = sys.open(root, step[1], OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
            sys.write(root, fd, step[2].encode())
            sys.close(root, fd)
        elif kind == "fork_exec":
            child = sys.fork(root)
            procs.append(child)
            logical[child.pid] = len(logical)
            sys.execve(child, step[2])
            sys.exit(child, 0)
        else:
            raise ValueError("unknown session step {!r}".format(kind))

    def _normalize(self, record, logical):
        """Strip volatile fields; rewrite live pids to logical ids.

        Logical ids are per-session creation indexes (root is 0), so
        records compare equal across worlds with different live pid
        assignment — the service analogue of the replay worker's
        recorded-pid rewrite.
        """
        out = strip_volatile(record)
        pid = out.get("pid")
        if pid in logical:
            out["pid"] = logical[pid]
        return out

    def snapshot(self):
        """Final picklable worker summary (merged by the driver)."""
        firewall = self.session.firewall
        metrics = firewall.metrics
        return {
            "worker_id": self.worker_id,
            "sessions": self.sessions_run,
            "stats": firewall.stats.as_dict(),
            "metrics_prom": metrics.to_prometheus() if metrics.enabled else None,
            "cpu_s": self.busy_cpu,
            "live_pids": len(self.session.kernel.processes),
            "baseline_pids": self.baseline_pids,
            "tables_loaded": self.tables_loaded,
        }


def service_worker_entry(conn, init):
    """Spawn-context worker main loop.

    Protocol (driver side in :mod:`repro.service.pool`): the parent
    sends ``("run", spec)`` messages and the worker answers each with
    ``("done", result)``; ``("fin",)`` answers ``("fin", snapshot)``
    and exits.  Any failure ships ``("error", traceback text)`` and
    exits — the driver re-raises with the child traceback attached.
    """
    try:
        runner = SessionRunner(init)
        while True:
            msg = conn.recv()
            if msg[0] == "run":
                conn.send(("done", runner.run_session(msg[1])))
            elif msg[0] == "fin":
                conn.send(("fin", runner.snapshot()))
                break
            else:
                raise ValueError("unknown service message {!r}".format(msg[0]))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()
