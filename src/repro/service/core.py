"""Per-worker session execution: admit, run, time, reap.

A :class:`SessionRunner` is the long-lived heart of one service
worker: it owns a single :class:`repro.api.Session` (world + kernel +
engine + obs, built once at worker start — the whole point of the
facade) and executes generated session specs against it one at a
time.  For each session it:

1. creates the session's private files and adversary trap
   (:func:`repro.workloads.generators.setup_session_fs` — unmediated,
   so setup cannot perturb verdicts);
2. spawns the session's root process and executes the spec's step
   tuples, timing each mediated syscall with ``perf_counter`` (the
   latency samples the benchmark's p50/p99 come from) and recording
   one ``(step index, op, status)`` verdict per step, where status is
   ``"ok"``, ``"PFDenied"``, or the errno name;
3. brackets the firewall audit ring around each step, tagging emitted
   records ``(lclock=sid, sub)`` and rewriting live pids to stable
   per-session logical ids — the same discipline as
   :mod:`repro.parallel.worker`, so merged service audit interleaves
   back to the serial shape;
4. **reaps** every process the session created
   (:meth:`repro.api.Session.reap`): descriptors closed, pid census
   entry removed, CoW firewall state released.  The churn tests pin
   that a runner's kernel returns to its pre-session census after
   every close.

Everything here is importable at module level because workers start
under the ``multiprocessing`` **spawn** context;
:func:`service_worker_entry` is the child-process main loop.
"""

from __future__ import annotations

import pickle
import time
import traceback

from repro.api import Session
from repro.errors import KernelError, PFDenied
from repro.obs.audit import severity_name
from repro.obs.service import WireCounters
from repro.parallel.batch import record_mediations
from repro.parallel.merge import strip_volatile
from repro.service import wire
from repro.vfs.file import OpenFlags
from repro.workloads.generators import setup_session_fs

#: Steps whose syscalls pass through firewall mediation (timed).
_MEDIATED_STEPS = frozenset(
    ("open_read", "stat", "append", "fork_exec", "trap_open")
)

#: Read-only step kinds eligible for the capture-and-replay fast path
#: (see :meth:`SessionRunner._replayable_step`).  ``append`` mutates
#: file content and ``fork_exec`` mutates the process census, so both
#: always execute for real.
_REPLAYABLE_STEPS = frozenset(("stat", "open_read", "trap_open"))


class SessionRunner:
    """Executes generated session specs against one live Session.

    ``init`` is the picklable worker payload: ``engine`` (preset name
    or config), ``rules_text`` (``save_rules`` output), ``world``
    (builder name or ``(name, kwargs)``, default the service world),
    ``metered``, ``collect_audit``, ``worker_id``, and optionally
    ``tables_text`` — a serialized flat-table artifact
    (:func:`repro.firewall.tables.serialize_tables`) loaded instead of
    compiling, so TABLED workers start at zero warmup.  A stale
    artifact fails the worker loudly (:class:`repro.errors.PFTablesStale`
    ships back as a worker error), never silently degrades.
    """

    def __init__(self, init):
        self.worker_id = init.get("worker_id", 0)
        self.collect_audit = init.get("collect_audit", True)
        self.session = Session(
            engine=init.get("engine", "JITTED"),
            rules=init.get("rules_text"),
            world=init.get("world", "service"),
            metered=init.get("metered", False),
            tables=init.get("tables_text"),
            dcache=init.get("dcache"),
        )
        #: Whether this runner adopted a pre-compiled artifact (the
        #: cold-start test asserts real workers really loaded it).
        self.tables_loaded = bool(
            init.get("tables_text") is not None
            and self.session.firewall._tables is not None
            and self.session.firewall._tables.loaded
        )
        #: Pid-census size of the idle runner; churn tests assert the
        #: census returns here after every reap.
        self.baseline_pids = len(self.session.kernel.processes)
        #: Mediation-busy CPU seconds (process_time over run_session
        #: bodies only — setup/idle excluded), part of the cpu-basis
        #: throughput denominator.
        self.busy_cpu = 0.0
        #: Wire CPU seconds — message (de)serialization charged by the
        #: worker serve loop.  Counted into the snapshot's ``cpu_s``
        #: for *both* protocols, so the cpu-basis throughput comparison
        #: includes the serialization tax it is meant to expose.
        self.wire_cpu = 0.0
        #: Route repeated read-only steps through the captured-stream
        #: ``mediate_batch`` fast path (see :meth:`_replayable_step`).
        #: On by default; ``init["step_batch"]=False`` restores the
        #: plain per-call loop.
        self.step_batch = init.get("step_batch", True)
        self.sessions_run = 0

    def run_session(self, spec):
        """Admit, execute, and reap one session; returns its result.

        The result is fully picklable: ``sid``, per-step verdicts,
        tagged+normalized audit records, per-mediated-step latency
        samples (seconds), and drop/mediation counts.
        """
        cpu_start = time.process_time()
        session = self.session
        kernel = session.kernel
        sid = spec["sid"]
        setup_session_fs(kernel, spec)
        root = session.spawn(
            spec["comm"], label=spec["label"], binary_path=spec["binary"]
        )
        procs = [root]
        logical = {root.pid: 0}
        ring = session.audit
        verdicts = []
        audit = []
        latencies = []
        drops = 0
        stats = session.stats
        mediations_before = stats.invocations
        replay_cache = {} if self.step_batch else None
        for idx, step in enumerate(spec["steps"]):
            before = ring.next_seq()
            timed = step[0] in _MEDIATED_STEPS
            start = time.perf_counter() if timed else 0.0
            if replay_cache is not None and step[0] in _REPLAYABLE_STEPS:
                status = self._replayable_step(root, step, replay_cache)
            else:
                try:
                    self._exec_step(root, step, procs, logical)
                except PFDenied:
                    status = "PFDenied"
                except KernelError as exc:
                    status = exc.errno_name
                else:
                    status = "ok"
            if status == "PFDenied":
                drops += 1
            if timed:
                latencies.append(time.perf_counter() - start)
            verdicts.append((idx, step[0], status))
            emitted = ring.next_seq() - before
            if self.collect_audit and emitted:
                for entry in ring.tail(emitted):
                    audit.append({
                        "worker": self.worker_id,
                        "lclock": sid,
                        "sub": len(audit),
                        "severity": severity_name(entry.severity),
                        "kind": entry.kind,
                        "record": self._normalize(entry.record, logical),
                    })
        for proc in procs:
            if proc.pid in kernel.processes:
                session.reap(proc)
            else:
                # Exited during the session (fork_exec children):
                # already out of the census; release state only.
                proc.pf.release()
        self.busy_cpu += time.process_time() - cpu_start
        self.sessions_run += 1
        return {
            "sid": sid,
            "verdicts": verdicts,
            "audit": audit,
            "latencies": latencies,
            "mediations": stats.invocations - mediations_before,
            "drops": drops,
        }

    def run_batch(self, specs):
        """Run one frame's sessions back-to-back, in frame order.

        The execution unit behind a binary ``run`` frame: results come
        back in submission order so the worker can answer with one
        ``result`` frame.  Purely sequential — a worker is still one
        session at a time; the batching amortizes the *pipe*, not the
        kernel.
        """
        return [self.run_session(spec) for spec in specs]

    def _replayable_step(self, root, step, cache):
        """One read-only step via the capture-and-replay fast path.

        Service traffic is dominated by repeats: the apache docroot
        stat chain re-runs every request, sessions re-open the same
        content and home files over and over.  A repeat of a read-only
        step re-derives a mediation stream that is — rules stationary,
        topology and credentials unchanged by any step in the session
        vocabulary — identical to its first run except for the syscall
        sequence numbers, and its fd open/read/close churn has no
        observable effect.  So the first run of each ``(kind, path)``
        executes for real under
        :func:`repro.parallel.batch.record_mediations`, also noting
        the per-syscall group structure of the captured stream (which
        operations belonged to which ``begin_syscall`` window, and the
        syscall names — a denied ``trap_open`` captures only its
        ``open``); repeats tick the same kernel bookkeeping the real
        syscalls would (clock, per-syscall counts, fresh sequence
        numbers re-stamped group by group) and push the captured
        operations through
        :meth:`~repro.firewall.engine.ProcessFirewall.mediate_batch` —
        same per-op verdicts, engine stats, and audit as the per-call
        loop by the batched-path contract, at amortized run cost.
        Mediation still evaluates live context (the captured
        operations only pin *which* accesses happen, against live
        processes and inodes), and a replay verdict that disagrees
        with the captured outcome raises ``RuntimeError`` — divergence
        means a broken invariant, never a silent wrong answer.

        Only used when kernel-level audit is off (the service world's
        configuration); the kernel audit trail of a replayed step
        would otherwise be skipped.
        """
        session = self.session
        key = (step[0], step[1])
        cached = cache.get(key)
        if cached is None:
            if session.kernel.audit_enabled:
                # Kernel audit would record the real walk but not the
                # replays; keep the slow path so the trail stays whole.
                try:
                    self._exec_step(root, step, [], {})
                except PFDenied:
                    return "PFDenied"
                except KernelError as exc:
                    return exc.errno_name
                return "ok"
            with record_mediations(session.firewall) as captured:
                try:
                    self._exec_step(root, step, [], {})
                except PFDenied:
                    status = "PFDenied"
                except KernelError as exc:
                    status = exc.errno_name
                else:
                    status = "ok"
            groups = []
            names = []
            group_of = {}
            for operation in captured:
                seq = operation.extra.get("syscall_seq")
                if seq not in group_of:
                    group_of[seq] = len(names)
                    names.append(operation.syscall or "?")
                groups.append(group_of[seq])
            cache[key] = (captured, groups, names, status)
            return status
        operations, groups, names, status = cached
        kernel = session.kernel
        seqs = []
        for name in names:
            kernel.clock.tick()
            kernel.stats.count_syscall(name)
            kernel._syscall_seq += 1
            seqs.append(kernel._syscall_seq)
        for operation, group in zip(operations, groups):
            operation.extra["syscall_seq"] = seqs[group]
        verdicts = session.firewall.mediate_batch(operations)
        denied = status == "PFDenied"
        for position, verdict in enumerate(verdicts):
            last = position == len(verdicts) - 1
            if (verdict == "drop") != (denied and last):
                raise RuntimeError(
                    "replayed {}({!r}) diverged from its captured run "
                    "(op {} verdict {!r}, cached status {!r})".format(
                        step[0], step[1], position, verdict, status))
        return status

    def _exec_step(self, root, step, procs, logical):
        """Execute one spec step tuple against the live kernel."""
        sys = self.session.sys
        kind = step[0]
        if kind == "open_read" or kind == "trap_open":
            fd = sys.open(root, step[1])
            sys.read(root, fd)
            sys.close(root, fd)
        elif kind == "stat":
            sys.stat(root, step[1])
        elif kind == "getpid":
            sys.getpid(root)
        elif kind == "append":
            fd = sys.open(root, step[1], OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
            sys.write(root, fd, step[2].encode())
            sys.close(root, fd)
        elif kind == "fork_exec":
            child = sys.fork(root)
            procs.append(child)
            logical[child.pid] = len(logical)
            sys.execve(child, step[2])
            sys.exit(child, 0)
        else:
            raise ValueError("unknown session step {!r}".format(kind))

    def _normalize(self, record, logical):
        """Strip volatile fields; rewrite live pids to logical ids.

        Logical ids are per-session creation indexes (root is 0), so
        records compare equal across worlds with different live pid
        assignment — the service analogue of the replay worker's
        recorded-pid rewrite.
        """
        out = strip_volatile(record)
        pid = out.get("pid")
        if pid in logical:
            out["pid"] = logical[pid]
        return out

    def snapshot(self):
        """Final picklable worker summary (merged by the driver).

        ``cpu_s`` is mediation-busy CPU *plus* the worker's wire codec
        CPU — the serve loop charges (de)serialization time to
        :attr:`wire_cpu` under either protocol, so the cpu-basis
        throughput the benchmark compares includes the crossing cost
        this PR exists to shrink.
        """
        firewall = self.session.firewall
        metrics = firewall.metrics
        return {
            "worker_id": self.worker_id,
            "sessions": self.sessions_run,
            "stats": firewall.stats.as_dict(),
            "metrics_prom": metrics.to_prometheus() if metrics.enabled else None,
            "cpu_s": self.busy_cpu + self.wire_cpu,
            "live_pids": len(self.session.kernel.processes),
            "baseline_pids": self.baseline_pids,
            "tables_loaded": self.tables_loaded,
        }


def _finish_snapshot(runner, counters):
    """The worker's final snapshot with its wire tallies attached.

    When the runner is metered, the tallies also land in its metrics
    registry (``pf_service_wire_*`` with ``endpoint="worker"``) so
    they survive the driver's Prometheus merge.
    """
    metrics = runner.session.firewall.metrics
    if metrics.enabled:
        counters.to_metrics(metrics, "worker")
    snap = runner.snapshot()
    snap["wire"] = counters.as_dict()
    return snap


def _serve_v0(conn, init):
    """The per-session pickle protocol loop (``wire_protocol="v0"``).

    One pickled ``("run", spec)`` in, one pickled ``("done", result)``
    out, ``("fin",)`` answered with ``("fin", snapshot)``.  Messages
    ride :meth:`~multiprocessing.connection.Connection.send_bytes` so
    the byte and codec-CPU tallies are measured for v0 too — the
    benchmark's protocol comparison needs both columns on the same
    accounting basis.
    """
    runner = SessionRunner(init)
    counters = WireCounters()
    while True:
        data = conn.recv_bytes()
        cpu = time.process_time()
        msg = pickle.loads(data)
        counters.observe_decode(time.process_time() - cpu)
        counters.observe_frame(
            "rx", msg[0], len(data), sessions=1 if msg[0] == "run" else 0)
        if msg[0] == "run":
            result = runner.run_session(msg[1])
            cpu = time.process_time()
            out = pickle.dumps(("done", result), protocol=pickle.HIGHEST_PROTOCOL)
            counters.observe_encode(time.process_time() - cpu)
            conn.send_bytes(out)
            counters.observe_frame("tx", "done", len(out), sessions=1)
        elif msg[0] == "fin":
            runner.wire_cpu += counters.encode_s + counters.decode_s
            out = pickle.dumps(
                ("fin", _finish_snapshot(runner, counters)),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            conn.send_bytes(out)
            return
        else:
            raise ValueError("unknown service message {!r}".format(msg[0]))


def _serve_binary(conn, init):
    """The batched binary protocol loop (``wire_protocol="binary"``).

    Frames from :mod:`repro.service.wire`: a ``run`` frame carries a
    batch of codec-interned specs, answered by one ``result`` frame of
    compact result records in the same order; a ``fin`` frame is
    answered with a pickled-snapshot frame.  Codec CPU is charged to
    the runner's ``wire_cpu`` and tallied per direction.
    """
    runner = SessionRunner(init)
    counters = WireCounters()
    codec = wire.SpecCodec(init.get("wire_templates"))
    strings = wire.StringTable(init.get("wire_strings"))
    while True:
        data = conn.recv_bytes()
        kind, payloads = wire.unpack_frame(data)
        counters.observe_frame(
            "rx", wire.FRAME_NAMES.get(kind, str(kind)), len(data),
            sessions=len(payloads) if kind == wire.FRAME_RUN else 0)
        if kind == wire.FRAME_RUN:
            cpu = time.process_time()
            specs = [codec.decode(payload) for payload in payloads]
            counters.observe_decode(time.process_time() - cpu)
            results = runner.run_batch(specs)
            cpu = time.process_time()
            frame = wire.pack_frame(
                wire.FRAME_RESULT,
                [wire.encode_result(result, strings) for result in results],
            )
            counters.observe_encode(time.process_time() - cpu)
            conn.send_bytes(frame)
            counters.observe_frame(
                "tx", "result", len(frame), sessions=len(results))
        elif kind == wire.FRAME_FIN:
            runner.wire_cpu += counters.encode_s + counters.decode_s
            frame = wire.pack_frame(wire.FRAME_SNAPSHOT, [
                pickle.dumps(
                    _finish_snapshot(runner, counters),
                    protocol=pickle.HIGHEST_PROTOCOL,
                ),
            ])
            conn.send_bytes(frame)
            return
        else:
            raise ValueError(
                "unexpected frame kind {!r} in a worker".format(kind))


def service_worker_entry(conn, init):
    """Spawn-context worker main loop.

    Dispatches on ``init["wire_protocol"]`` to the v0 pickle loop or
    the batched binary loop (driver side in
    :mod:`repro.service.pool`).  Any failure ships a traceback —
    ``("error", text)`` under v0, an error frame under binary — and
    exits; the driver re-raises with the child traceback attached.
    """
    protocol = init.get("wire_protocol", wire.DEFAULT_PROTOCOL)
    try:
        if protocol == "binary":
            _serve_binary(conn, init)
        else:
            _serve_v0(conn, init)
    except BaseException:
        try:
            text = traceback.format_exc()
            if protocol == "binary":
                conn.send_bytes(wire.pack_frame(
                    wire.FRAME_ERROR, [text.encode("utf-8")]))
            else:
                conn.send_bytes(pickle.dumps(
                    ("error", text), protocol=pickle.HIGHEST_PROTOCOL))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()
