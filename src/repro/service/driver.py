"""Admission control, load generation, and the service-result merge.

:func:`run_service` is the single entry point for running a generated
session stream through a :class:`~repro.service.pool.ServicePool`.
Two admission modes:

- **closed loop** (``mode="closed"``) — a bounded population: the next
  session is admitted when a slot frees up.  Offered load always
  matches capacity, nothing is rejected; this is the reproducible mode
  the differential tests use and the capacity probe of the benchmark.
- **open loop** (``mode="open"``) — arrivals are paced by wall clock
  at ``offered_rate`` sessions/second (the memoryless-arrival model;
  :func:`repro.workloads.generators.poisson_offsets` exists for
  explicit schedules).  Arrivals land in a bounded pending queue;
  when the queue is full, further arrivals are **rejected and
  counted** — graceful backpressure, the behaviour past saturation
  the benchmark's acceptance gate checks (throughput must plateau,
  not collapse).

Admission is **batched**: each loop iteration hands the pool every
pending session its free window can take in one
:meth:`~repro.service.pool.ServicePool.submit_many` call, so under the
binary wire protocol (:mod:`repro.service.wire`) frame sizes track
queue depth adaptively — an idle service ships single-session frames
at minimum latency, a backlogged one coalesces up to a full window per
worker into each pipe write.

Results merge back to one serial-shaped dict exactly like
:mod:`repro.parallel.merge`: per-session verdict streams sort by
``sid``, audit records by ``(sid, sub)``, worker engine stats fold via
``EngineStats.merge``, and throughput is reported on both the
wall-clock and worker-CPU-time bases (the latter is the honest scaling
measure on core-starved CI runners).  The merged dict also carries a
``wire`` section — driver- and worker-endpoint frame/byte/codec
tallies plus bytes-per-session and sessions-per-frame — which is what
:func:`compare_protocols` and the benchmark's protocol columns read.
"""

from __future__ import annotations

import time

from repro.firewall.engine import EngineStats
from repro.obs.metrics import registry_from_prometheus
from repro.obs.service import ServiceCounters, WireCounters
from repro.service import wire
from repro.service.pool import DEFAULT_WORKER_WINDOW, ServicePool
from repro.workloads.generators import generate_stream, service_rules_text

#: Default bound of the open-loop pending (arrival) queue, in sessions.
DEFAULT_MAX_PENDING = 64

#: Poll granularity of the admission loop, seconds.
_POLL_S = 0.02


def run_service(
    specs,
    rules_text=None,
    engine="JITTED",
    workers=2,
    processes=True,
    mode="closed",
    offered_rate=None,
    max_pending=DEFAULT_MAX_PENDING,
    window=DEFAULT_WORKER_WINDOW,
    metered=False,
    collect_audit=True,
    tables_text=None,
    protocol=wire.DEFAULT_PROTOCOL,
    step_batch=None,
    dcache=None,
):
    """Run ``specs`` through a service pool; returns the merged result.

    ``rules_text`` defaults to the service rule base
    (:func:`~repro.workloads.generators.service_rules_text`).
    ``engine`` is any :func:`repro.api.resolve_engine` spelling.
    ``tables_text`` optionally ships a serialized flat-table artifact
    (:func:`repro.firewall.tables.serialize_tables`) to every worker so
    TABLED workers load instead of compiling (zero-warmup cold start).
    ``processes=False`` runs inline (the serial reference when
    ``workers=1``).  ``mode="open"`` requires ``offered_rate``; see
    the module docstring for the two admission disciplines.
    ``protocol`` picks the worker wire path
    (:data:`repro.service.wire.PROTOCOLS`): the default ``"binary"``
    interns the stream's spec templates and the shared audit string
    table once (:meth:`~repro.service.wire.SpecCodec.from_specs` /
    :func:`~repro.service.wire.audit_strings`, shipped in worker init)
    and batches sessions into frames; ``"v0"`` is the per-session
    pickle compatibility path — merged observables are pinned
    identical across the two.  ``step_batch`` picks the runner's step
    loop; the default ``None`` ties it to the protocol (binary gets
    the capture-and-replay batched loop, v0 the original per-call
    loop, so each protocol column measures its whole data plane), and
    an explicit boolean overrides that coupling for differential
    tests.

    The returned dict: ``verdicts`` ``[(sid, step, op, status), ...]``
    in serial order, ``audit`` (tagged, normalized, serial order),
    ``stats`` (merged ``EngineStats`` as dict), ``metrics_prom``,
    ``counters`` (:meth:`ServiceCounters.as_dict`), ``latency``
    (p50/p99 seconds over the retained window), ``throughput``
    (sessions/s and mediations/s on wall and CPU bases), ``rejected``
    (sids refused at admission), ``workers`` (per-worker rows),
    ``drops`` (total denied operations), and ``wire`` (the data-plane
    tallies described in the module docstring).
    """
    if mode not in ("closed", "open"):
        raise ValueError("mode must be 'closed' or 'open', not {!r}".format(mode))
    if mode == "open" and not offered_rate:
        raise ValueError("open-loop mode requires offered_rate")
    if rules_text is None:
        rules_text = service_rules_text()
    specs = list(specs)
    init = {
        "engine": engine,
        "rules_text": rules_text,
        "world": "service",
        "metered": metered,
        "collect_audit": collect_audit,
        "wire_protocol": protocol,
        "step_batch": (protocol == "binary") if step_batch is None else step_batch,
    }
    if dcache is not None:
        # Worker kernels keep their default (dcache on) unless forced;
        # the dcache differential suite pins on == off.
        init["dcache"] = bool(dcache)
    if tables_text is not None:
        init["tables_text"] = tables_text
    if protocol == "binary":
        init["wire_templates"] = wire.SpecCodec.from_specs(specs).templates
        init["wire_strings"] = wire.audit_strings(rules_text)
    pool = ServicePool(workers, init, processes=processes, window=window)
    counters = ServiceCounters()
    results = []
    rejected = []
    try:
        wall_start = time.perf_counter()
        if mode == "closed":
            _pump_closed(pool, specs, counters, results)
        else:
            _pump_open(
                pool, specs, counters, results, rejected,
                offered_rate, max_pending, wall_start,
            )
        wall_s = time.perf_counter() - wall_start
        snapshots = pool.close()
    except BaseException:
        if pool.processes and not pool._closed:
            pool._reap_processes()
        raise
    return _merge(
        results, snapshots, counters, rejected, wall_s, mode, offered_rate,
        workers, pool,
    )


def _collect(pool, counters, results, timeout):
    """Drain completions into ``results``, folding latency samples."""
    done = pool.poll(timeout=timeout)
    for result in done:
        counters.completed += 1
        counters.observe_latencies(result["latencies"])
        results.append(result)
    return len(done)


def _admit(pool, batch, counters):
    """Hand ``batch`` to the pool in one batched dispatch."""
    pool.submit_many(batch)
    counters.admitted += len(batch)
    counters.observe_inflight(pool.inflight)


def _pump_closed(pool, specs, counters, results):
    """Bounded-population admission: completions admit the next batch.

    Each iteration admits ``min(queued, pool.capacity())`` sessions in
    one :meth:`~repro.service.pool.ServicePool.submit_many` — the
    adaptive frame sizing: the emptier the windows, the bigger the
    batch that refills them.
    """
    pending = list(reversed(specs))
    while pending or pool.inflight:
        take = min(len(pending), pool.capacity())
        if take:
            _admit(pool, [pending.pop() for _ in range(take)], counters)
        _collect(pool, counters, results, _POLL_S if pool.inflight else 0)


def _pump_open(pool, specs, counters, results, rejected, rate, max_pending, start):
    """Wall-clock-paced admission with a bounded queue and rejection.

    ``target(t) = rate * t`` sessions should have arrived by elapsed
    ``t``; each loop iteration releases the arrivals the clock owes,
    queues them up to ``max_pending``, and rejects the overflow.  Once
    the stream is exhausted the loop drains the queue and the pool.
    """
    arrivals = list(reversed(specs))
    pending = []
    released = 0
    total = len(specs)
    while arrivals or pending or pool.inflight:
        if arrivals:
            owed = min(total, int(rate * (time.perf_counter() - start))) - released
            for _ in range(owed):
                if not arrivals:
                    break
                spec = arrivals.pop()
                released += 1
                if len(pending) >= max_pending:
                    counters.rejected += 1
                    rejected.append(spec["sid"])
                else:
                    pending.append(spec)
            counters.observe_queue(len(pending))
        take = min(len(pending), pool.capacity())
        if take:
            batch = pending[:take]
            del pending[:take]
            _admit(pool, batch, counters)
        if pool.inflight:
            _collect(pool, counters, results, _POLL_S)
        else:
            _collect(pool, counters, results, 0)
            if arrivals:
                # Ahead of the arrival clock: idle until more is owed.
                time.sleep(min(_POLL_S, 1.0 / rate))


def _wire_summary(pool, snapshots, completed):
    """The merged result's ``wire`` section.

    Driver-endpoint tallies straight off the pool, worker-endpoint
    tallies folded across snapshots, and the two derived figures the
    benchmark gates on: ``bytes_per_session`` (driver tx+rx over
    completed sessions) and ``sessions_per_frame`` (sessions carried
    per driver-sent run frame — 1.0 under v0 by construction, up to a
    full worker window under binary batching).  Inline pools move no
    bytes; their summary is all zeros with ``None`` derived figures.
    """
    driver = pool.wire
    worker_tallies = WireCounters()
    for snap in snapshots:
        if snap.get("wire"):
            worker_tallies.merge(snap["wire"])
    total_bytes = driver.bytes["tx"] + driver.bytes["rx"]
    run_frames = driver.frames["tx"].get("run", 0)
    return {
        "protocol": pool.protocol,
        "driver": driver.as_dict(),
        "workers": worker_tallies.as_dict(),
        "bytes_per_session": (total_bytes / completed) if completed and total_bytes else None,
        "sessions_per_frame": (driver.sessions["tx"] / run_frames) if run_frames else None,
        "codec_s": {
            "driver_encode": driver.encode_s,
            "driver_decode": driver.decode_s,
            "worker_encode": worker_tallies.encode_s,
            "worker_decode": worker_tallies.decode_s,
        },
    }


def _merge(results, snapshots, counters, rejected, wall_s, mode, rate, workers, pool):
    """Fold per-session results + worker snapshots to the serial shape."""
    results.sort(key=lambda r: r["sid"])
    verdicts = [
        (r["sid"], idx, op, status)
        for r in results
        for (idx, op, status) in r["verdicts"]
    ]
    audit = [row for r in results for row in r["audit"]]
    audit.sort(key=lambda row: (row["lclock"], row["sub"]))
    stats = EngineStats()
    metrics = None
    worker_rows = []
    for snap in sorted(snapshots, key=lambda s: s["worker_id"]):
        stats.merge(snap["stats"])
        if snap.get("metrics_prom"):
            registry = registry_from_prometheus(snap["metrics_prom"])
            if metrics is None:
                metrics = registry
            else:
                metrics.merge(registry)
        worker_rows.append({
            "worker_id": snap["worker_id"],
            "sessions": snap["sessions"],
            "cpu_s": snap["cpu_s"],
            "live_pids": snap["live_pids"],
            "baseline_pids": snap["baseline_pids"],
            "tables_loaded": snap.get("tables_loaded", False),
        })
    if metrics is not None:
        pool.wire.to_metrics(metrics, "driver")
    mediations = sum(r["mediations"] for r in results)
    drops = sum(r["drops"] for r in results)
    # CPU-basis rate: each worker's mediation count over its busy CPU
    # time, summed — the repro.parallel scaling basis, stable on
    # core-starved hosts where wall-clock parallelism is a lie.
    throughput_cpu = 0.0
    for snap in sorted(snapshots, key=lambda s: s["worker_id"]):
        if snap["cpu_s"] > 0:
            throughput_cpu += snap["stats"]["invocations"] / snap["cpu_s"]
    return {
        "mode": mode,
        "offered_rate": rate,
        "workers": worker_rows,
        "n_workers": workers,
        "verdicts": verdicts,
        "audit": audit,
        "stats": stats.as_dict(),
        "metrics_prom": metrics.to_prometheus() if metrics is not None else None,
        "counters": counters.as_dict(),
        "latency": counters.latency_percentiles(),
        "rejected": sorted(rejected),
        "drops": drops,
        "wire": _wire_summary(pool, snapshots, len(results)),
        "throughput": {
            "wall_s": wall_s,
            "sessions": len(results),
            "mediations": mediations,
            "sessions_per_s": len(results) / wall_s if wall_s > 0 else 0.0,
            "mediations_per_s": mediations / wall_s if wall_s > 0 else 0.0,
            "mediations_per_cpu_s": throughput_cpu,
        },
    }


def _us(seconds):
    """Seconds → microseconds (rounded), ``None``-propagating."""
    return None if seconds is None else round(seconds * 1e6, 2)


def sweep_service(
    worker_counts=(1, 2, 4, 8),
    load_factors=(0.5, 1.0, 2.0),
    sessions=200,
    seed=0x5EA5,
    engine="JITTED",
    processes=True,
    max_pending=DEFAULT_MAX_PENDING,
    window=DEFAULT_WORKER_WINDOW,
    protocol=wire.DEFAULT_PROTOCOL,
):
    """The steady-state service sweep behind ``BENCH_service.json``.

    For each worker count: one **closed-loop** run measures sustained
    capacity (offered load == capacity by construction), then one
    **open-loop** run per load factor offers ``factor × capacity``
    sessions/second against a bounded queue.  Factors above 1.0 drive
    the service past saturation, where the gate is *graceful*
    degradation: completed throughput holds near capacity and the
    surplus is rejected — never a collapse.

    Returns a JSON-ready dict: per-worker capacity rows (closed-loop
    rows include the wire figures — bytes/session, sessions/frame),
    per-load points with p50/p99 mediation latency (µs),
    completed/rejected session counts, and throughput on the wall and
    worker-CPU bases.
    """
    specs = generate_stream(sessions, seed)
    rules_text = service_rules_text()
    worker_points = []
    for workers in worker_counts:
        closed = run_service(
            specs, rules_text, engine=engine, workers=workers,
            processes=processes, window=window, protocol=protocol,
        )
        capacity = closed["throughput"]["sessions_per_s"]
        closed_wire = closed["wire"]
        row = {
            "workers": workers,
            "closed_loop": {
                "sessions_per_s": round(capacity, 1),
                "mediations_per_s": round(closed["throughput"]["mediations_per_s"], 1),
                "mediations_per_cpu_s": round(
                    closed["throughput"]["mediations_per_cpu_s"], 1),
                "p50_us": _us(closed["latency"]["p50"]),
                "p99_us": _us(closed["latency"]["p99"]),
                "drops": closed["drops"],
                "bytes_per_session": (
                    round(closed_wire["bytes_per_session"], 1)
                    if closed_wire["bytes_per_session"] is not None else None),
                "sessions_per_frame": (
                    round(closed_wire["sessions_per_frame"], 2)
                    if closed_wire["sessions_per_frame"] is not None else None),
            },
            "load_points": [],
        }
        for factor in load_factors:
            rate = max(1.0, capacity * factor)
            point = run_service(
                specs, rules_text, engine=engine, workers=workers,
                processes=processes, mode="open", offered_rate=rate,
                max_pending=max_pending, window=window, protocol=protocol,
            )
            row["load_points"].append({
                "load_factor": factor,
                "offered_rate": round(rate, 1),
                "completed": point["counters"]["completed"],
                "rejected": point["counters"]["rejected"],
                "queue_depth_peak": point["counters"]["queue_depth_peak"],
                "sessions_per_s": round(point["throughput"]["sessions_per_s"], 1),
                "mediations_per_s": round(point["throughput"]["mediations_per_s"], 1),
                "p50_us": _us(point["latency"]["p50"]),
                "p99_us": _us(point["latency"]["p99"]),
            })
        worker_points.append(row)
    return {
        "engine": engine,
        "sessions": sessions,
        "seed": seed,
        "processes": bool(processes),
        "max_pending": max_pending,
        "worker_window": window,
        "protocol": protocol,
        "latency_unit": "microseconds (per mediated syscall, wall clock)",
        "scaling_basis": "sessions/s wall + mediations per worker-CPU-second",
        "worker_points": worker_points,
    }


def compare_protocols(
    worker_counts=(1, 2, 4, 8),
    sessions=200,
    seed=0x5EA5,
    engine="JITTED",
    processes=True,
    window=DEFAULT_WORKER_WINDOW,
):
    """Closed-loop v0-vs-binary wire comparison, one row per worker count.

    The same stream runs once per protocol at each worker count; each
    row reports, per protocol, cpu-basis mediation throughput (wire
    codec CPU included in the denominator — the crossing tax is the
    thing under test), wall-clock session throughput, bytes/session,
    sessions/frame, and the codec share of total worker CPU.  Two
    derived ratios close the row: ``cpu_ratio`` (binary over v0
    cpu-basis throughput, the benchmark's ≥1.15× gate at 8 workers)
    and ``bytes_ratio`` (v0 over binary bytes/session, the ≥3× gate).
    """
    specs = generate_stream(sessions, seed)
    rules_text = service_rules_text()
    rows = []
    for workers in worker_counts:
        row = {"workers": workers}
        for protocol in wire.PROTOCOLS:
            run = run_service(
                specs, rules_text, engine=engine, workers=workers,
                processes=processes, window=window, protocol=protocol,
            )
            summary = run["wire"]
            codec = summary["codec_s"]
            worker_cpu = sum(r["cpu_s"] for r in run["workers"])
            codec_cpu = codec["worker_encode"] + codec["worker_decode"]
            row[protocol] = {
                "mediations_per_cpu_s": round(
                    run["throughput"]["mediations_per_cpu_s"], 1),
                "sessions_per_s": round(run["throughput"]["sessions_per_s"], 1),
                "bytes_per_session": (
                    round(summary["bytes_per_session"], 1)
                    if summary["bytes_per_session"] is not None else None),
                "sessions_per_frame": (
                    round(summary["sessions_per_frame"], 2)
                    if summary["sessions_per_frame"] is not None else None),
                "codec_cpu_share": (
                    round(codec_cpu / worker_cpu, 4) if worker_cpu else None),
            }
        v0_cpu = row["v0"]["mediations_per_cpu_s"]
        binary_cpu = row["binary"]["mediations_per_cpu_s"]
        row["cpu_ratio"] = round(binary_cpu / v0_cpu, 3) if v0_cpu else None
        v0_bytes = row["v0"]["bytes_per_session"]
        binary_bytes = row["binary"]["bytes_per_session"]
        row["bytes_ratio"] = (
            round(v0_bytes / binary_bytes, 2) if v0_bytes and binary_bytes else None)
        rows.append(row)
    return {
        "engine": engine,
        "sessions": sessions,
        "seed": seed,
        "processes": bool(processes),
        "worker_window": window,
        "cpu_basis": "mediations per worker-CPU-second, wire codec CPU included",
        "rows": rows,
    }
