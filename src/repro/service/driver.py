"""Admission control, load generation, and the service-result merge.

:func:`run_service` is the single entry point for running a generated
session stream through a :class:`~repro.service.pool.ServicePool`.
Two admission modes:

- **closed loop** (``mode="closed"``) — a bounded population: the next
  session is admitted when a slot frees up.  Offered load always
  matches capacity, nothing is rejected; this is the reproducible mode
  the differential tests use and the capacity probe of the benchmark.
- **open loop** (``mode="open"``) — arrivals are paced by wall clock
  at ``offered_rate`` sessions/second (the memoryless-arrival model;
  :func:`repro.workloads.generators.poisson_offsets` exists for
  explicit schedules).  Arrivals land in a bounded pending queue;
  when the queue is full, further arrivals are **rejected and
  counted** — graceful backpressure, the behaviour past saturation
  the benchmark's acceptance gate checks (throughput must plateau,
  not collapse).

Results merge back to one serial-shaped dict exactly like
:mod:`repro.parallel.merge`: per-session verdict streams sort by
``sid``, audit records by ``(sid, sub)``, worker engine stats fold via
``EngineStats.merge``, and throughput is reported on both the
wall-clock and worker-CPU-time bases (the latter is the honest scaling
measure on core-starved CI runners).
"""

from __future__ import annotations

import time

from repro.firewall.engine import EngineStats
from repro.obs.metrics import registry_from_prometheus
from repro.obs.service import ServiceCounters
from repro.service.pool import DEFAULT_WORKER_WINDOW, ServicePool
from repro.workloads.generators import generate_stream, service_rules_text

#: Default bound of the open-loop pending (arrival) queue, in sessions.
DEFAULT_MAX_PENDING = 64

#: Poll granularity of the admission loop, seconds.
_POLL_S = 0.02


def run_service(
    specs,
    rules_text=None,
    engine="JITTED",
    workers=2,
    processes=True,
    mode="closed",
    offered_rate=None,
    max_pending=DEFAULT_MAX_PENDING,
    window=DEFAULT_WORKER_WINDOW,
    metered=False,
    collect_audit=True,
    tables_text=None,
):
    """Run ``specs`` through a service pool; returns the merged result.

    ``rules_text`` defaults to the service rule base
    (:func:`~repro.workloads.generators.service_rules_text`).
    ``engine`` is any :func:`repro.api.resolve_engine` spelling.
    ``tables_text`` optionally ships a serialized flat-table artifact
    (:func:`repro.firewall.tables.serialize_tables`) to every worker so
    TABLED workers load instead of compiling (zero-warmup cold start).
    ``processes=False`` runs inline (the serial reference when
    ``workers=1``).  ``mode="open"`` requires ``offered_rate``; see
    the module docstring for the two admission disciplines.

    The returned dict: ``verdicts`` ``[(sid, step, op, status), ...]``
    in serial order, ``audit`` (tagged, normalized, serial order),
    ``stats`` (merged ``EngineStats`` as dict), ``metrics_prom``,
    ``counters`` (:meth:`ServiceCounters.as_dict`), ``latency``
    (p50/p99 seconds over the retained window), ``throughput``
    (sessions/s and mediations/s on wall and CPU bases), ``rejected``
    (sids refused at admission), ``workers`` (per-worker rows), and
    ``drops`` (total denied operations).
    """
    if mode not in ("closed", "open"):
        raise ValueError("mode must be 'closed' or 'open', not {!r}".format(mode))
    if mode == "open" and not offered_rate:
        raise ValueError("open-loop mode requires offered_rate")
    if rules_text is None:
        rules_text = service_rules_text()
    init = {
        "engine": engine,
        "rules_text": rules_text,
        "world": "service",
        "metered": metered,
        "collect_audit": collect_audit,
    }
    if tables_text is not None:
        init["tables_text"] = tables_text
    pool = ServicePool(workers, init, processes=processes, window=window)
    counters = ServiceCounters()
    results = []
    rejected = []
    try:
        wall_start = time.perf_counter()
        if mode == "closed":
            _pump_closed(pool, list(specs), counters, results)
        else:
            _pump_open(
                pool, list(specs), counters, results, rejected,
                offered_rate, max_pending, wall_start,
            )
        wall_s = time.perf_counter() - wall_start
        snapshots = pool.close()
    except BaseException:
        if pool.processes and not pool._closed:
            pool._reap_processes()
        raise
    return _merge(
        results, snapshots, counters, rejected, wall_s, mode, offered_rate, workers
    )


def _collect(pool, counters, results, timeout):
    """Drain completions into ``results``, folding latency samples."""
    done = pool.poll(timeout=timeout)
    for result in done:
        counters.completed += 1
        counters.observe_latencies(result["latencies"])
        results.append(result)
    return len(done)


def _pump_closed(pool, specs, counters, results):
    """Bounded-population admission: a completion admits the next."""
    pending = list(reversed(specs))
    while pending or pool.inflight:
        progressed = False
        while pending and pool.has_capacity():
            pool.submit(pending.pop())
            counters.admitted += 1
            counters.observe_inflight(pool.inflight)
            progressed = True
        if pool.inflight:
            progressed |= bool(_collect(pool, counters, results, _POLL_S))
        elif not pool.processes:
            progressed |= bool(_collect(pool, counters, results, 0))
        if not progressed and not pool.processes and not pending:
            break


def _pump_open(pool, specs, counters, results, rejected, rate, max_pending, start):
    """Wall-clock-paced admission with a bounded queue and rejection.

    ``target(t) = rate * t`` sessions should have arrived by elapsed
    ``t``; each loop iteration releases the arrivals the clock owes,
    queues them up to ``max_pending``, and rejects the overflow.  Once
    the stream is exhausted the loop drains the queue and the pool.
    """
    arrivals = list(reversed(specs))
    pending = []
    released = 0
    total = len(specs)
    while arrivals or pending or pool.inflight:
        if arrivals:
            owed = min(total, int(rate * (time.perf_counter() - start))) - released
            for _ in range(owed):
                if not arrivals:
                    break
                spec = arrivals.pop()
                released += 1
                if len(pending) >= max_pending:
                    counters.rejected += 1
                    rejected.append(spec["sid"])
                else:
                    pending.append(spec)
            counters.observe_queue(len(pending))
        while pending and pool.has_capacity():
            pool.submit(pending.pop(0))
            counters.admitted += 1
            counters.observe_inflight(pool.inflight)
        if pool.inflight:
            _collect(pool, counters, results, _POLL_S)
        else:
            _collect(pool, counters, results, 0)
            if arrivals:
                # Ahead of the arrival clock: idle until more is owed.
                time.sleep(min(_POLL_S, 1.0 / rate))


def _merge(results, snapshots, counters, rejected, wall_s, mode, rate, workers):
    """Fold per-session results + worker snapshots to the serial shape."""
    results.sort(key=lambda r: r["sid"])
    verdicts = [
        (r["sid"], idx, op, status)
        for r in results
        for (idx, op, status) in r["verdicts"]
    ]
    audit = [row for r in results for row in r["audit"]]
    audit.sort(key=lambda row: (row["lclock"], row["sub"]))
    stats = EngineStats()
    metrics = None
    worker_rows = []
    for snap in sorted(snapshots, key=lambda s: s["worker_id"]):
        stats.merge(snap["stats"])
        if snap.get("metrics_prom"):
            registry = registry_from_prometheus(snap["metrics_prom"])
            if metrics is None:
                metrics = registry
            else:
                metrics.merge(registry)
        worker_rows.append({
            "worker_id": snap["worker_id"],
            "sessions": snap["sessions"],
            "cpu_s": snap["cpu_s"],
            "live_pids": snap["live_pids"],
            "baseline_pids": snap["baseline_pids"],
            "tables_loaded": snap.get("tables_loaded", False),
        })
    mediations = sum(r["mediations"] for r in results)
    drops = sum(r["drops"] for r in results)
    # CPU-basis rate: each worker's mediation count over its busy CPU
    # time, summed — the repro.parallel scaling basis, stable on
    # core-starved hosts where wall-clock parallelism is a lie.
    throughput_cpu = 0.0
    for snap in sorted(snapshots, key=lambda s: s["worker_id"]):
        if snap["cpu_s"] > 0:
            throughput_cpu += snap["stats"]["invocations"] / snap["cpu_s"]
    return {
        "mode": mode,
        "offered_rate": rate,
        "workers": worker_rows,
        "n_workers": workers,
        "verdicts": verdicts,
        "audit": audit,
        "stats": stats.as_dict(),
        "metrics_prom": metrics.to_prometheus() if metrics is not None else None,
        "counters": counters.as_dict(),
        "latency": counters.latency_percentiles(),
        "rejected": sorted(rejected),
        "drops": drops,
        "throughput": {
            "wall_s": wall_s,
            "sessions": len(results),
            "mediations": mediations,
            "sessions_per_s": len(results) / wall_s if wall_s > 0 else 0.0,
            "mediations_per_s": mediations / wall_s if wall_s > 0 else 0.0,
            "mediations_per_cpu_s": throughput_cpu,
        },
    }


def _us(seconds):
    """Seconds → microseconds (rounded), ``None``-propagating."""
    return None if seconds is None else round(seconds * 1e6, 2)


def sweep_service(
    worker_counts=(1, 2, 4, 8),
    load_factors=(0.5, 1.0, 2.0),
    sessions=200,
    seed=0x5EA5,
    engine="JITTED",
    processes=True,
    max_pending=DEFAULT_MAX_PENDING,
    window=DEFAULT_WORKER_WINDOW,
):
    """The steady-state service sweep behind ``BENCH_service.json``.

    For each worker count: one **closed-loop** run measures sustained
    capacity (offered load == capacity by construction), then one
    **open-loop** run per load factor offers ``factor × capacity``
    sessions/second against a bounded queue.  Factors above 1.0 drive
    the service past saturation, where the gate is *graceful*
    degradation: completed throughput holds near capacity and the
    surplus is rejected — never a collapse.

    Returns a JSON-ready dict: per-worker capacity rows, per-load
    points with p50/p99 mediation latency (µs), completed/rejected
    session counts, and throughput on the wall and worker-CPU bases.
    """
    specs = generate_stream(sessions, seed)
    rules_text = service_rules_text()
    worker_points = []
    for workers in worker_counts:
        closed = run_service(
            specs, rules_text, engine=engine, workers=workers,
            processes=processes, window=window,
        )
        capacity = closed["throughput"]["sessions_per_s"]
        row = {
            "workers": workers,
            "closed_loop": {
                "sessions_per_s": round(capacity, 1),
                "mediations_per_s": round(closed["throughput"]["mediations_per_s"], 1),
                "mediations_per_cpu_s": round(
                    closed["throughput"]["mediations_per_cpu_s"], 1),
                "p50_us": _us(closed["latency"]["p50"]),
                "p99_us": _us(closed["latency"]["p99"]),
                "drops": closed["drops"],
            },
            "load_points": [],
        }
        for factor in load_factors:
            rate = max(1.0, capacity * factor)
            point = run_service(
                specs, rules_text, engine=engine, workers=workers,
                processes=processes, mode="open", offered_rate=rate,
                max_pending=max_pending, window=window,
            )
            row["load_points"].append({
                "load_factor": factor,
                "offered_rate": round(rate, 1),
                "completed": point["counters"]["completed"],
                "rejected": point["counters"]["rejected"],
                "queue_depth_peak": point["counters"]["queue_depth_peak"],
                "sessions_per_s": round(point["throughput"]["sessions_per_s"], 1),
                "mediations_per_s": round(point["throughput"]["mediations_per_s"], 1),
                "p50_us": _us(point["latency"]["p50"]),
                "p99_us": _us(point["latency"]["p99"]),
            })
        worker_points.append(row)
    return {
        "engine": engine,
        "sessions": sessions,
        "seed": seed,
        "processes": bool(processes),
        "max_pending": max_pending,
        "worker_window": window,
        "latency_unit": "microseconds (per mediated syscall, wall clock)",
        "scaling_basis": "sessions/s wall + mediations per worker-CPU-second",
        "worker_points": worker_points,
    }
