"""Long-lived worker pool for the mediation service.

:mod:`repro.parallel` workers are one-shot: build a world, replay a
shard, ship one snapshot, exit.  A service cannot pay world
construction per session, so :class:`ServicePool` keeps spawn-context
OS workers **alive across sessions**: each worker builds its
:class:`~repro.service.core.SessionRunner` once, then serves session
batches over its pipe until the pool is closed, answering the final
``fin`` exchange with its engine/obs snapshot.

Transport is selected by ``init["wire_protocol"]`` (see
:mod:`repro.service.wire`): the default ``"binary"`` protocol ships
multi-session run frames of template-interned spec records and gets
compact result records back; the ``"v0"`` compatibility protocol ships
one pickled ``("run", spec)`` per session exactly as the service
originally did.  Both ride ``send_bytes``/``recv_bytes`` and feed the
pool's driver-side :class:`~repro.obs.service.WireCounters`, so the
two are comparable on the same byte/CPU accounting basis and the
differential suite can pin their merged observables identical.

The pool also has an inline mode (``processes=False``) running the
same :class:`SessionRunner` code in the calling process — the serial
reference of the differential tests and the debugging path.  Inline
dispatch uses the *same* least-outstanding policy and window
accounting as process mode (sessions occupy window slots until
:meth:`ServicePool.poll` drains them), so a differential run exercises
identical session-to-worker assignment in both modes.

Dispatch is least-outstanding-first with a bounded per-worker window
(:data:`DEFAULT_WORKER_WINDOW`); :meth:`ServicePool.has_capacity` /
:meth:`ServicePool.capacity` are what the driver's admission
controller consults, making the pool the backpressure boundary — and
``capacity()`` is what sizes each admission batch, so frame sizes
track queue depth up to the free window.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from multiprocessing.connection import wait as connection_wait

from repro.obs.service import WireCounters
from repro.service import wire
from repro.service.core import SessionRunner, service_worker_entry

#: Sessions a single worker may have queued+running at once.  Small:
#: enough to hide pipe latency, small enough that admission control —
#: not pipe buffering — is what absorbs overload.
DEFAULT_WORKER_WINDOW = 4


class ServicePool:
    """``workers`` long-lived session executors behind one submit API.

    ``init`` is the :class:`~repro.service.core.SessionRunner` payload
    (engine, rules text, world, metering) shipped to every worker,
    plus the pool-level wire keys: ``wire_protocol`` (defaulted to
    :data:`repro.service.wire.DEFAULT_PROTOCOL` and injected into the
    worker payload so both pipe ends speak the same protocol) and
    optionally ``wire_templates`` (a
    :class:`~repro.service.wire.SpecCodec` table) and ``wire_strings``
    (the shared audit string table,
    :func:`repro.service.wire.audit_strings`) — without them the
    binary codec still works, records just take escape/inline paths.  ``processes=True`` starts spawn-context OS workers,
    ``False`` runs inline runners in the calling process (results are
    queued and drained through the same :meth:`poll` API, so drivers
    are mode-blind).  ``window`` bounds per-worker outstanding
    sessions.
    """

    def __init__(self, workers, init, processes=True, window=DEFAULT_WORKER_WINDOW):
        if workers < 1:
            raise ValueError("need at least one worker")
        protocol = init.get("wire_protocol", wire.DEFAULT_PROTOCOL)
        if protocol not in wire.PROTOCOLS:
            raise ValueError(
                "unknown wire protocol {!r} (expected one of {})".format(
                    protocol, "/".join(wire.PROTOCOLS)))
        self.workers = workers
        self.window = window
        self.processes = processes
        self.protocol = protocol
        #: Driver-endpoint wire tallies (frames/bytes/sessions/codec
        #: CPU); the merge folds these with each worker's own.
        self.wire = WireCounters()
        self._codec = wire.SpecCodec(init.get("wire_templates"))
        self._strings = wire.StringTable(init.get("wire_strings"))
        self._result_kinds = {}
        self._outstanding = [0] * workers
        self._closed = False
        if processes:
            ctx = multiprocessing.get_context("spawn")
            self._conns = []
            self._procs = []
            for worker_id in range(workers):
                parent, child = ctx.Pipe(duplex=True)
                payload = dict(init)
                payload["worker_id"] = worker_id
                payload["wire_protocol"] = protocol
                proc = ctx.Process(
                    target=service_worker_entry, args=(child, payload)
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
        else:
            self._runners = []
            self._inline_done = []
            for worker_id in range(workers):
                payload = dict(init)
                payload["worker_id"] = worker_id
                payload["wire_protocol"] = protocol
                self._runners.append(SessionRunner(payload))

    # ------------------------------------------------------------------
    # capacity / dispatch
    # ------------------------------------------------------------------

    @property
    def inflight(self):
        """Total sessions currently occupying worker window slots.

        Inline mode included: an inline session has already *run* by
        the time :meth:`submit` returns, but it holds its slot until
        :meth:`poll` collects the result — identical window accounting
        in both modes, which is what makes the capacity-boundary tests
        mode-agnostic.
        """
        return sum(self._outstanding)

    def has_capacity(self):
        """True when some worker's window has room for one more."""
        return any(count < self.window for count in self._outstanding)

    def capacity(self):
        """Free window slots across all workers — the most sessions one
        :meth:`submit_many` call can currently take, which is how the
        driver sizes admission batches (and therefore frames) to queue
        depth."""
        return sum(self.window - count for count in self._outstanding)

    def submit(self, spec):
        """Dispatch one ``spec`` — :meth:`submit_many` of a single item."""
        self.submit_many([spec])

    def submit_many(self, specs):
        """Dispatch ``specs`` to the least-loaded workers, batched.

        Each spec goes to the worker with the fewest outstanding
        sessions at its turn (ties to the lowest id — the same
        sequence of assignments repeated :meth:`submit` calls would
        make).  Raises ``RuntimeError`` when a spec finds every window
        full — the driver must consult :meth:`capacity` first;
        overload is *its* admission decision, not a hidden queue here.

        Process mode then ships each worker its assignments in **one
        pipe write**: a multi-session binary run frame, or (v0) the
        per-session pickled messages.  Inline mode executes each spec
        synchronously on its assigned runner, holding the window slot
        until :meth:`poll`.
        """
        assignments = [[] for _ in range(self.workers)]
        for spec in specs:
            target = min(range(self.workers), key=lambda w: self._outstanding[w])
            if self._outstanding[target] >= self.window:
                raise RuntimeError("pool saturated; caller must backpressure")
            self._outstanding[target] += 1
            assignments[target].append(spec)
        if not self.processes:
            for worker_id, batch in enumerate(assignments):
                for spec in batch:
                    self._inline_done.append(
                        (worker_id, self._runners[worker_id].run_session(spec)))
            return
        for worker_id, batch in enumerate(assignments):
            if not batch:
                continue
            if self.protocol == "binary":
                for spec in batch:
                    self._result_kinds[spec["sid"]] = wire.step_kinds(spec)
                cpu = time.process_time()
                frame = wire.pack_frame(
                    wire.FRAME_RUN,
                    [self._codec.encode(spec) for spec in batch],
                )
                self.wire.observe_encode(time.process_time() - cpu)
                self._send_bytes(worker_id, frame)
                self.wire.observe_frame("tx", "run", len(frame), sessions=len(batch))
            else:
                for spec in batch:
                    cpu = time.process_time()
                    data = pickle.dumps(
                        ("run", spec), protocol=pickle.HIGHEST_PROTOCOL)
                    self.wire.observe_encode(time.process_time() - cpu)
                    self._send_bytes(worker_id, data)
                    self.wire.observe_frame("tx", "run", len(data), sessions=1)

    def poll(self, timeout=None):
        """Collect completed-session results; returns a (maybe empty) list.

        Inline mode drains the synchronous-completion queue (its
        window slots with it).  Process mode waits up to ``timeout``
        seconds for any worker pipe to be readable and drains every
        ready one — a binary worker answers a whole run frame with one
        result frame, so a single poll may retire a batch.  A worker
        error is re-raised here with the child traceback attached.
        """
        results = []
        if not self.processes:
            for worker_id, result in self._inline_done:
                self._outstanding[worker_id] -= 1
                results.append(result)
            self._inline_done = []
            return results
        ready = connection_wait(self._conns, timeout=timeout)
        for conn in ready:
            worker_id = self._conns.index(conn)
            data = self._recv_bytes(conn, worker_id)
            if self.protocol == "binary":
                kind, payloads = wire.unpack_frame(data)
                name = wire.FRAME_NAMES.get(kind, str(kind))
                if kind == wire.FRAME_ERROR:
                    self.wire.observe_frame("rx", name, len(data))
                    self._reap_processes()
                    raise RuntimeError("service worker {} failed:\n{}".format(
                        worker_id, payloads[0].decode("utf-8", "replace")))
                if kind != wire.FRAME_RESULT:
                    raise RuntimeError("unexpected {!r} frame from worker {}".format(
                        name, worker_id))
                self.wire.observe_frame(
                    "rx", name, len(data), sessions=len(payloads))
                cpu = time.process_time()
                for payload in payloads:
                    result = wire.decode_result(
                        payload, self._result_kinds, self._strings)
                    self._result_kinds.pop(result["sid"], None)
                    self._outstanding[worker_id] -= 1
                    results.append(result)
                self.wire.observe_decode(time.process_time() - cpu)
            else:
                cpu = time.process_time()
                msg = pickle.loads(data)
                self.wire.observe_decode(time.process_time() - cpu)
                if msg[0] == "error":
                    self.wire.observe_frame("rx", "error", len(data))
                    self._reap_processes()
                    raise RuntimeError(
                        "service worker {} failed:\n{}".format(worker_id, msg[1]))
                if msg[0] != "done":
                    raise RuntimeError(
                        "unexpected {!r} from worker {}".format(msg[0], worker_id))
                self.wire.observe_frame("rx", "done", len(data), sessions=1)
                self._outstanding[worker_id] -= 1
                results.append(msg[1])
        return results

    def _send_bytes(self, worker_id, data):
        """One raw message to ``worker_id``; a dead pipe becomes a clear error."""
        try:
            self._conns[worker_id].send_bytes(data)
        except (BrokenPipeError, OSError):
            self._reap_processes()
            raise RuntimeError(
                "service worker {} died without reporting (pipe closed); "
                "cannot dispatch".format(worker_id)
            )

    def _recv_bytes(self, conn, worker_id):
        """One raw message from ``worker_id``; a dead pipe becomes a clear error.

        A worker that dies before shipping its error message (killed,
        import failure in the spawned interpreter) closes the pipe
        instead; surface that as the same ``RuntimeError`` shape rather
        than a raw ``EOFError`` / ``ConnectionResetError`` from the
        depths of multiprocessing.
        """
        try:
            return conn.recv_bytes()
        except (EOFError, ConnectionResetError, OSError):
            self._reap_processes()
            raise RuntimeError(
                "service worker {} died without reporting (pipe closed); "
                "it may have failed before its runner was built".format(worker_id)
            )

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def close(self):
        """Finalize every worker; returns their engine/obs snapshots.

        Sends the protocol's ``fin`` and gathers one
        :meth:`~repro.service.core.SessionRunner.snapshot` per worker;
        idempotent-unsafe by design (a closed pool is done).  Workers
        must be drained (``inflight == 0``) first.
        """
        if self._closed:
            raise RuntimeError("pool already closed")
        if self.inflight:
            raise RuntimeError(
                "close() with {} sessions in flight; drain first".format(self.inflight)
            )
        self._closed = True
        if not self.processes:
            return [runner.snapshot() for runner in self._runners]
        snapshots = []
        try:
            for worker_id in range(self.workers):
                if self.protocol == "binary":
                    fin = wire.pack_frame(wire.FRAME_FIN)
                else:
                    fin = pickle.dumps(("fin",), protocol=pickle.HIGHEST_PROTOCOL)
                self._send_bytes(worker_id, fin)
                self.wire.observe_frame("tx", "fin", len(fin))
            for worker_id, conn in enumerate(self._conns):
                data = self._recv_bytes(conn, worker_id)
                snapshots.append(self._decode_snapshot(data, worker_id))
        finally:
            self._reap_processes()
        return snapshots

    def _decode_snapshot(self, data, worker_id):
        """The ``fin`` answer — a snapshot, or a shutdown failure."""
        if self.protocol == "binary":
            kind, payloads = wire.unpack_frame(data)
            name = wire.FRAME_NAMES.get(kind, str(kind))
            self.wire.observe_frame("rx", name, len(data))
            if kind == wire.FRAME_ERROR:
                raise RuntimeError("worker {} failed at shutdown:\n{}".format(
                    worker_id, payloads[0].decode("utf-8", "replace")))
            if kind != wire.FRAME_SNAPSHOT:
                raise RuntimeError(
                    "unexpected {!r} frame from worker {} at shutdown".format(
                        name, worker_id))
            return pickle.loads(payloads[0])
        msg = pickle.loads(data)
        self.wire.observe_frame("rx", msg[0], len(data))
        if msg[0] != "fin":
            raise RuntimeError(
                "worker {} failed at shutdown:\n{}".format(worker_id, msg[1])
            )
        return msg[1]

    def _reap_processes(self):
        """Join/kill worker processes and close pipes (error paths too)."""
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung-worker safety
                proc.terminate()
                proc.join(timeout=5)
