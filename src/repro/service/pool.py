"""Long-lived worker pool for the mediation service.

:mod:`repro.parallel` workers are one-shot: build a world, replay a
shard, ship one snapshot, exit.  A service cannot pay world
construction per session, so :class:`ServicePool` keeps spawn-context
OS workers **alive across sessions**: each worker builds its
:class:`~repro.service.core.SessionRunner` once, then serves
``("run", spec)`` requests over its pipe until the pool is closed,
answering ``("fin",)`` with its final engine/obs snapshot.

The pool also has an inline mode (``processes=False``) running the
same :class:`SessionRunner` code in the calling process — the serial
reference of the differential tests and the debugging path, exactly
mirroring :mod:`repro.parallel.driver`'s inline shards: any
divergence between inline and spawned runs is a service bug, not a
harness artifact.

Dispatch is least-outstanding-first with a bounded per-worker window
(:data:`DEFAULT_WORKER_WINDOW`); :meth:`ServicePool.has_capacity` is
what the driver's admission controller consults, making the pool the
backpressure boundary.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing.connection import wait as connection_wait

from repro.service.core import SessionRunner, service_worker_entry

#: Sessions a single worker may have queued+running at once.  Small:
#: enough to hide pipe latency, small enough that admission control —
#: not pipe buffering — is what absorbs overload.
DEFAULT_WORKER_WINDOW = 4


class ServicePool:
    """``workers`` long-lived session executors behind one submit API.

    ``init`` is the :class:`~repro.service.core.SessionRunner` payload
    (engine, rules text, world, metering) shipped to every worker;
    ``processes=True`` starts spawn-context OS workers, ``False`` runs
    inline runners in the calling process (results are queued and
    drained through the same :meth:`poll` API, so drivers are
    mode-blind).  ``window`` bounds per-worker outstanding sessions.
    """

    def __init__(self, workers, init, processes=True, window=DEFAULT_WORKER_WINDOW):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.window = window
        self.processes = processes
        self._outstanding = [0] * workers
        self._closed = False
        if processes:
            ctx = multiprocessing.get_context("spawn")
            self._conns = []
            self._procs = []
            for worker_id in range(workers):
                parent, child = ctx.Pipe(duplex=True)
                payload = dict(init)
                payload["worker_id"] = worker_id
                proc = ctx.Process(
                    target=service_worker_entry, args=(child, payload)
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
        else:
            self._runners = []
            self._inline_done = []
            self._rr = 0
            for worker_id in range(workers):
                payload = dict(init)
                payload["worker_id"] = worker_id
                self._runners.append(SessionRunner(payload))

    # ------------------------------------------------------------------
    # capacity / dispatch
    # ------------------------------------------------------------------

    @property
    def inflight(self):
        """Total sessions currently queued or running in workers."""
        return sum(self._outstanding)

    def has_capacity(self):
        """True when some worker's window has room for one more."""
        return any(count < self.window for count in self._outstanding)

    def submit(self, spec):
        """Dispatch ``spec`` to the least-loaded worker with room.

        Raises ``RuntimeError`` when every window is full — the driver
        must consult :meth:`has_capacity` first; overload is *its*
        admission decision, not a hidden queue here.

        Inline mode executes synchronously (the session is complete
        when ``submit`` returns, its result queued for :meth:`poll`)
        and distributes round-robin so a multi-runner inline pool
        exercises the same session-to-worker spread a process pool
        would.
        """
        if not self.processes:
            target = self._rr % self.workers
            self._rr += 1
            self._inline_done.append(self._runners[target].run_session(spec))
            return
        target = min(range(self.workers), key=lambda w: self._outstanding[w])
        if self._outstanding[target] >= self.window:
            raise RuntimeError("pool saturated; caller must backpressure")
        self._outstanding[target] += 1
        try:
            self._conns[target].send(("run", spec))
        except (BrokenPipeError, OSError):
            self._reap_processes()
            raise RuntimeError(
                "service worker {} died without reporting (pipe closed); "
                "cannot dispatch".format(target)
            )

    def poll(self, timeout=None):
        """Collect completed-session results; returns a (maybe empty) list.

        Inline mode drains the synchronous-completion queue.  Process
        mode waits up to ``timeout`` seconds for any worker pipe to be
        readable and drains every ready one.  A worker error is
        re-raised here with the child traceback attached.
        """
        results = []
        if not self.processes:
            results, self._inline_done = self._inline_done, []
            return results
        ready = connection_wait(self._conns, timeout=timeout)
        for conn in ready:
            worker_id = self._conns.index(conn)
            kind, payload = self._recv(conn, worker_id)
            if kind == "error":
                self._reap_processes()
                raise RuntimeError(
                    "service worker {} failed:\n{}".format(worker_id, payload)
                )
            if kind != "done":
                raise RuntimeError(
                    "unexpected {!r} from worker {}".format(kind, worker_id)
                )
            self._outstanding[worker_id] -= 1
            results.append(payload)
        return results

    def _recv(self, conn, worker_id):
        """One message from ``worker_id``; a dead pipe becomes a clear error.

        A worker that dies before shipping its ``("error", ...)``
        message (killed, import failure in the spawned interpreter)
        closes the pipe instead; surface that as the same
        ``RuntimeError`` shape rather than a raw ``EOFError`` /
        ``ConnectionResetError`` from the depths of multiprocessing.
        """
        try:
            return conn.recv()
        except (EOFError, ConnectionResetError):
            self._reap_processes()
            raise RuntimeError(
                "service worker {} died without reporting (pipe closed); "
                "it may have failed before its runner was built".format(worker_id)
            )

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def close(self):
        """Finalize every worker; returns their engine/obs snapshots.

        Sends ``("fin",)`` and gathers one
        :meth:`~repro.service.core.SessionRunner.snapshot` per worker;
        idempotent-unsafe by design (a closed pool is done).  Workers
        must be drained (``inflight == 0``) first.
        """
        if self._closed:
            raise RuntimeError("pool already closed")
        if self.inflight:
            raise RuntimeError(
                "close() with {} sessions in flight; drain first".format(self.inflight)
            )
        self._closed = True
        if not self.processes:
            return [runner.snapshot() for runner in self._runners]
        snapshots = []
        try:
            for conn in self._conns:
                conn.send(("fin",))
            for worker_id, conn in enumerate(self._conns):
                kind, payload = self._recv(conn, worker_id)
                if kind != "fin":
                    raise RuntimeError(
                        "worker {} failed at shutdown:\n{}".format(worker_id, payload)
                    )
                snapshots.append(payload)
        finally:
            self._reap_processes()
        return snapshots

    def _reap_processes(self):
        """Join/kill worker processes and close pipes (error paths too)."""
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung-worker safety
                proc.terminate()
                proc.join(timeout=5)
