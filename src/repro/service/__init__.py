"""``repro.service`` — the live mediation server (paper §6.3 at scale).

Where :mod:`repro.parallel` replays *finite recorded traces*, this
package sustains open-ended traffic: generated user sessions
(:mod:`repro.workloads.generators`) are admitted into a pool of
long-lived workers, each session runs against a live kernel through
the :class:`repro.api.Session` facade, and its firewall state is
reaped at close.  Three layers:

- :mod:`repro.service.core` — :class:`~repro.service.core.SessionRunner`,
  the per-worker engine that admits, executes, and reaps one session
  at a time, timing each mediated syscall;
- :mod:`repro.service.pool` — :class:`~repro.service.pool.ServicePool`,
  long-lived spawn-context OS workers (or inline runners) with a
  bounded per-worker in-flight window;
- :mod:`repro.service.wire` — the data plane: batched length-prefixed
  binary frames, spec template interning, compact result records, and
  the protocol-v0 compatibility path (``docs/SERVICE.md``);
- :mod:`repro.service.driver` — :func:`~repro.service.driver.run_service`,
  the closed-/open-loop admission controller with batched adaptive
  admission and backpressure, plus the merge back to one serial-shaped
  result.

Entry points: ``pfctl serve`` and ``pfctl bench-service``.
"""

from repro.service.driver import compare_protocols, run_service
from repro.service.wire import DEFAULT_PROTOCOL, PROTOCOLS

__all__ = ["DEFAULT_PROTOCOL", "PROTOCOLS", "compare_protocols", "run_service"]
