"""Batched binary wire protocol for the mediation service data plane.

The original service wire path (protocol ``"v0"``) ships one pickled
``("run", spec)`` tuple per session and gets one pickled result — every
per-step verdict tuple, every raw latency sample — back the same way.
Once the engine ladder made the *check* cheap, that per-session
round-trip became the measured tax at 4–8 workers.  This module is the
replacement data plane, three layers deep:

**Framing** — :func:`pack_frame` / :func:`unpack_frame` build
length-prefixed binary frames: a fixed :data:`MAGIC`/version/kind
header followed by ``count`` length-prefixed payload records.  One
frame carries a whole *batch* of sessions (or results), so the
admission controller can coalesce a backlog into a single pipe write
sized adaptively by queue depth instead of one write per session.

**Spec interning** — generated apache/sshd/php sessions are
near-identical: the same step vocabulary over per-session paths that
differ only by the session id.  :class:`SpecCodec` is built once from
the stream (:meth:`SpecCodec.from_specs`), ships its template table to
every worker in the init payload, and thereafter encodes a session as
``(template_id, sid, step-code array)`` — about two bytes per step —
by abstracting the session-id-derived substrings
(:func:`repro.workloads.generators.session_home` /
:func:`~repro.workloads.generators.trap_path`) out of each step.
Anything the codebook cannot express falls back to a pickled escape
record, so the codec is lossless over arbitrary specs, just compact
over generated ones.

**Result compression** — :func:`encode_result` exploits the service
invariant that almost every step status is ``"ok"``: the verdict
stream is carried as a count plus the *exceptional* ``(index,
status)`` pairs only (run-length encoding over the dominant ok-run),
latency samples ship as a packed ``array('d')`` buffer instead of a
pickled float list, and the irregular audit tail (rare: trap denials)
rides as an embedded pickle blob.  The step *ops* are never sent back
at all — the driver still holds the spec it submitted and
:func:`decode_result` re-derives them (``kinds_by_sid``), which is
where most of the result bytes go.

Protocol ``"v0"`` remains available end to end (``run_service(...,
protocol="v0")``) with byte-accounted pickle transport, so the
differential suite pins merged verdicts/audit/stats byte-identical
across both wire paths and the benchmark reports an honest
bytes-per-session and CPU comparison.  Frame and codec traffic is
observable through :class:`repro.obs.service.WireCounters`
(``pf_service_wire_*`` metric family).
"""

from __future__ import annotations

import pickle
import struct
from array import array

from repro.firewall.engine import ProcessFirewall
from repro.firewall.persist import load_rules
from repro.security.lsm import Op
from repro.workloads.generators import session_home, trap_path

#: Two-byte frame magic: a frame that does not start with this is not
#: service wire traffic and fails loudly (:class:`WireProtocolError`).
MAGIC = b"PW"

#: Wire format version carried in every frame header.
WIRE_VERSION = 1

#: Frame kinds (one byte on the wire).
FRAME_RUN = 1        #: driver -> worker: a batch of encoded session specs
FRAME_RESULT = 2     #: worker -> driver: a batch of encoded session results
FRAME_FIN = 3        #: driver -> worker: drain and ship the final snapshot
FRAME_SNAPSHOT = 4   #: worker -> driver: the pickled final snapshot
FRAME_ERROR = 5      #: worker -> driver: a failure (utf-8 traceback text)

#: Human-readable names for the frame kinds (metrics labels, errors).
FRAME_NAMES = {
    FRAME_RUN: "run",
    FRAME_RESULT: "result",
    FRAME_FIN: "fin",
    FRAME_SNAPSHOT: "snapshot",
    FRAME_ERROR: "error",
}

#: The selectable wire protocols: ``"v0"`` is the per-session pickle
#: path the service shipped with, ``"binary"`` this module's batched
#: binary path.  Merged results are pinned identical across the two.
PROTOCOLS = ("v0", "binary")

#: Protocol used when the caller does not choose one.
DEFAULT_PROTOCOL = "binary"

_HEADER = struct.Struct("<2sBBH")   # magic, version, kind, record count
_LEN = struct.Struct("<I")          # per-record length prefix

# Spec-record layout constants.
_SPEC_HEAD = struct.Struct("<BIH")  # template id, sid, step count
_SPEC_ESCAPE = 0xFF                 # template id of a whole-spec pickle escape
_STEP_ESCAPE = 0xFFFF               # step code of a pickled step escape
_MAX_TEMPLATES = 0xFF               # escape id excluded
_MAX_CODES = 0xFFFF                 # escape code excluded

# Result-record layout constants.
_RESULT_BINARY = 1                  # leading flag byte: binary layout
_RESULT_PICKLED = 0                 # leading flag byte: pickle escape
_RESULT_HEAD = struct.Struct("<IH")  # sid, verdict count
_RESULT_TAIL = struct.Struct("<II")  # mediations, drops

# Audit-section layout constants (inside a binary result record).
_AUDIT_STRUCT = 1                   # audit flag byte: structured rows
_AUDIT_PICKLED = 0                  # audit flag byte: pickle escape
_AUDIT_HEAD = struct.Struct("<HH")  # worker id, row count
_STR_ID = struct.Struct("<H")       # string-table index (0xFFFF = inline)
_STR_INLINE = 0xFFFF                # index marking an inline utf-8 string
_I64 = struct.Struct("<q")          # integer audit values
_VAL_STR = 0                        # value type: abstracted interned string
_VAL_INT = 1                        # value type: signed 64-bit integer
_VAL_PICKLE = 2                     # value type: pickled escape
_VAL_RAW = 3                        # value type: raw string (NUL-bearing)

#: The exact key set of a runner-emitted audit row; anything else takes
#: the pickled-audit escape.
_ROW_KEYS = frozenset(("worker", "lclock", "sub", "severity", "kind", "record"))

# Placeholders substituted for the two session-id-derived substrings
# when a step is abstracted into the codebook.  A NUL byte cannot occur
# in a real path, so abstraction never collides with payload text (any
# step already containing a NUL is escaped instead).
_PH_HOME = "\x00H"
_PH_TRAP = "\x00T"


class WireProtocolError(ValueError):
    """A frame or record violated the wire format (bad magic, version,
    truncated record, or a record that does not match its announced
    shape).  Always a bug or corruption, never a recoverable state —
    the pool surfaces it as a fatal worker error."""


def pack_frame(kind, payloads=()):
    """Serialize ``payloads`` (byte strings) into one ``kind`` frame.

    Layout: ``MAGIC | version(B) | kind(B) | count(H)`` followed by
    ``count`` records, each a ``<I`` length prefix plus the record
    bytes.  The whole frame is one pipe message — the batching unit of
    the data plane.
    """
    if len(payloads) > 0xFFFF:
        raise WireProtocolError(
            "frame of {} records exceeds the u16 count field".format(len(payloads)))
    parts = [_HEADER.pack(MAGIC, WIRE_VERSION, kind, len(payloads))]
    for payload in payloads:
        parts.append(_LEN.pack(len(payload)))
        parts.append(payload)
    return b"".join(parts)


def unpack_frame(data):
    """Parse one frame; returns ``(kind, [payload bytes, ...])``.

    Validates magic, version, and that the records exactly consume the
    frame — anything else raises :class:`WireProtocolError`.
    """
    if len(data) < _HEADER.size:
        raise WireProtocolError("truncated frame header ({} bytes)".format(len(data)))
    magic, version, kind, count = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise WireProtocolError("bad frame magic {!r}".format(magic))
    if version != WIRE_VERSION:
        raise WireProtocolError(
            "wire version {} (this build speaks {})".format(version, WIRE_VERSION))
    payloads = []
    offset = _HEADER.size
    for _ in range(count):
        if offset + _LEN.size > len(data):
            raise WireProtocolError("truncated record length prefix")
        (length,) = _LEN.unpack_from(data, offset)
        offset += _LEN.size
        if offset + length > len(data):
            raise WireProtocolError("truncated record body")
        payloads.append(bytes(data[offset:offset + length]))
        offset += length
    if offset != len(data):
        raise WireProtocolError(
            "{} trailing bytes after the last record".format(len(data) - offset))
    return kind, payloads


#: Strings every service audit stream leans on regardless of rule base:
#: record keys, severity and kind names, the session models' process
#: names, the mediated syscall vocabulary, and the hot content paths
#: (sid-derived ones in placeholder form — they intern once, match
#: every session).  :func:`audit_strings` appends the Op names and the
#: rule-base texts after these.
_FIXED_STRINGS = (
    "pid", "comm", "op", "syscall", "path", "rule",
    "debug", "info", "warning", "error", "drop", "log",
    "apache2", "sshd", "php5", "sh",
    "open", "stat", "read", "write", "close", "fork", "execve",
    "exit", "getpid",
    "/etc/passwd", _PH_TRAP, _PH_HOME + "/f0", _PH_HOME + "/f1",
    "/var/www", "/var/www/html", "/var/www/html/index.html",
    "/usr/lib/libphp5.so", "/bin/sh",
)


def audit_strings(rules_text=None):
    """The shared audit string table for a rule base — a plain list.

    Deterministic function of ``rules_text``: the fixed vocabulary
    (:data:`_FIXED_STRINGS`), then every :class:`Op` name, then the
    canonical ``rule.text`` of each installed rule — collected by
    loading the text into a throwaway firewall, in table/chain/position
    order, exactly as both endpoints would.  Driver and workers each
    hold ``rules_text`` (it is already in the worker init payload), so
    the same list exists on both ends and audit rows can cross the
    pipe as two-byte indexes; the dominant audit payload is the
    matched-rule text (~130 bytes per drop record), which is what this
    table exists to intern.  Strings outside the table ride inline —
    the table is a compression dictionary, never a constraint.
    """
    table = list(_FIXED_STRINGS)
    seen = set(table)
    for name in Op.__members__:
        if name not in seen:
            seen.add(name)
            table.append(name)
    if rules_text:
        firewall = ProcessFirewall()
        load_rules(firewall, rules_text)
        for table_name in sorted(firewall.rules.tables):
            for chain in firewall.rules.tables[table_name].chains.values():
                for rule in chain.rules:
                    if rule.text and rule.text not in seen:
                        seen.add(rule.text)
                        table.append(rule.text)
    return table[:_STR_INLINE]


class StringTable:
    """Two-way view over a shared string list (see :func:`audit_strings`).

    Encoders map string → index (``None`` when absent → inline escape);
    decoders map index → string.  Built from the plain list that ships
    in the worker init payload; ``StringTable(None)`` is the empty
    table — every string rides inline, correct but not compact.
    """

    def __init__(self, strings=None):
        #: The table in index order (what ships in init payloads).
        self.strings = list(strings) if strings else []
        self._ids = {s: i for i, s in enumerate(self.strings)}

    def index(self, value):
        """Table index of ``value``, or ``None`` if not interned."""
        return self._ids.get(value)

    def lookup(self, index):
        """The string at ``index``; raises :class:`WireProtocolError`
        when the index is outside the table (decoder/table mismatch)."""
        if index >= len(self.strings):
            raise WireProtocolError(
                "string index {} outside the shared table ({} entries)".format(
                    index, len(self.strings)))
        return self.strings[index]


#: The empty table used when a caller passes ``strings=None``.
_EMPTY_STRINGS = StringTable()


def _pack_str(value, strings, home, trap, parts):
    """Append one abstracted string: table index or inline escape."""
    abstracted = value.replace(home, _PH_HOME).replace(trap, _PH_TRAP)
    index = strings._ids.get(abstracted)
    if index is not None:
        parts.append(_STR_ID.pack(index))
    else:
        blob = abstracted.encode("utf-8")
        parts.append(_STR_ID.pack(_STR_INLINE))
        parts.append(_LEN.pack(len(blob)))
        parts.append(blob)


def _unpack_str(payload, offset, strings, home, trap):
    """Inverse of :func:`_pack_str`; returns ``(value, offset)``."""
    (index,) = _STR_ID.unpack_from(payload, offset)
    offset += _STR_ID.size
    if index == _STR_INLINE:
        (length,) = _LEN.unpack_from(payload, offset)
        offset += _LEN.size
        value = payload[offset:offset + length].decode("utf-8")
        offset += length
    else:
        value = strings.lookup(index)
    return value.replace(_PH_HOME, home).replace(_PH_TRAP, trap), offset


def _pack_value(value, strings, home, trap, parts):
    """Append one typed audit value (string/int/pickle escape)."""
    if isinstance(value, str):
        if "\x00" in value:
            # A NUL would collide with the placeholder alphabet; ship
            # the raw text untouched and skip substitution on decode.
            blob = value.encode("utf-8")
            parts.append(bytes([_VAL_RAW]))
            parts.append(_LEN.pack(len(blob)))
            parts.append(blob)
        else:
            parts.append(bytes([_VAL_STR]))
            _pack_str(value, strings, home, trap, parts)
    elif isinstance(value, int) and not isinstance(value, bool) \
            and -2 ** 63 <= value < 2 ** 63:
        parts.append(bytes([_VAL_INT]))
        parts.append(_I64.pack(value))
    else:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        parts.append(bytes([_VAL_PICKLE]))
        parts.append(_LEN.pack(len(blob)))
        parts.append(blob)


def _unpack_value(payload, offset, strings, home, trap):
    """Inverse of :func:`_pack_value`; returns ``(value, offset)``."""
    kind = payload[offset]
    offset += 1
    if kind == _VAL_STR:
        return _unpack_str(payload, offset, strings, home, trap)
    if kind == _VAL_INT:
        (value,) = _I64.unpack_from(payload, offset)
        return value, offset + _I64.size
    if kind == _VAL_RAW or kind == _VAL_PICKLE:
        (length,) = _LEN.unpack_from(payload, offset)
        offset += _LEN.size
        blob = payload[offset:offset + length]
        offset += length
        if kind == _VAL_RAW:
            return blob.decode("utf-8"), offset
        return pickle.loads(blob), offset
    raise WireProtocolError("unknown audit value type {}".format(kind))


def _encode_audit(audit, strings, sid, home, trap):
    """The audit section of a binary result record.

    Runner-emitted rows are fully reconstructible from ``(worker id,
    sid, row position)`` plus their payload fields, so the structured
    layout ships only ``severity``/``kind``/``record`` per row — each
    string as a shared-table index (:func:`audit_strings`) with the
    sid-derived path substrings in placeholder form.  Rows that do not
    match the runner's shape (foreign keys, lclock != sid, out-of-order
    sub counters) take the pickled escape; either way the section is
    self-describing via its leading flag byte.
    """
    structured = len(audit) <= 0xFFFF
    worker = audit[0].get("worker", 0) if audit else 0
    if structured and audit:
        if not isinstance(worker, int) or not 0 <= worker <= 0xFFFF:
            structured = False
        for position, row in enumerate(audit):
            if (
                not structured
                or not isinstance(row, dict)
                or frozenset(row) != _ROW_KEYS
                or row["worker"] != worker
                or row["lclock"] != sid
                or row["sub"] != position
                or not isinstance(row["severity"], str)
                or not isinstance(row["kind"], str)
                or not isinstance(row["record"], dict)
                or len(row["record"]) > 0xFF
                or not all(isinstance(key, str) for key in row["record"])
            ):
                structured = False
                break
    if not structured:
        blob = pickle.dumps(audit, protocol=pickle.HIGHEST_PROTOCOL)
        return b"".join([bytes([_AUDIT_PICKLED]), _LEN.pack(len(blob)), blob])
    parts = [bytes([_AUDIT_STRUCT]), _AUDIT_HEAD.pack(worker, len(audit))]
    for row in audit:
        _pack_str(row["severity"], strings, home, trap, parts)
        _pack_str(row["kind"], strings, home, trap, parts)
        record = row["record"]
        parts.append(bytes([len(record)]))
        for key, value in record.items():
            _pack_str(key, strings, home, trap, parts)
            _pack_value(value, strings, home, trap, parts)
    return b"".join(parts)


def _decode_audit(payload, offset, strings, sid, home, trap):
    """Inverse of :func:`_encode_audit`; returns ``(audit, offset)``.

    Structured rows are rebuilt with ``worker`` from the section head,
    ``lclock = sid``, and ``sub`` from row position — the three fields
    the encoder never shipped.
    """
    flag = payload[offset]
    offset += 1
    if flag == _AUDIT_PICKLED:
        (length,) = _LEN.unpack_from(payload, offset)
        offset += _LEN.size
        audit = pickle.loads(payload[offset:offset + length]) if length else []
        return audit, offset + length
    if flag != _AUDIT_STRUCT:
        raise WireProtocolError("unknown audit section flag {}".format(flag))
    worker, nrows = _AUDIT_HEAD.unpack_from(payload, offset)
    offset += _AUDIT_HEAD.size
    audit = []
    for position in range(nrows):
        severity, offset = _unpack_str(payload, offset, strings, home, trap)
        kind, offset = _unpack_str(payload, offset, strings, home, trap)
        nentries = payload[offset]
        offset += 1
        record = {}
        for _ in range(nentries):
            key, offset = _unpack_str(payload, offset, strings, home, trap)
            record[key], offset = _unpack_value(payload, offset, strings, home, trap)
        audit.append({
            "worker": worker,
            "lclock": sid,
            "sub": position,
            "severity": severity,
            "kind": kind,
            "record": record,
        })
    return audit, offset


def _abstract_step(step, home, trap):
    """A step tuple with its sid-derived substrings made symbolic.

    Returns the abstracted tuple (the codebook key), or ``None`` when
    the step cannot be abstracted safely: not a tuple of strings, or a
    string already containing a NUL (which would collide with the
    placeholder alphabet).  The step *kind* (element 0) is never
    substituted — kinds are fixed identifiers, not paths.
    """
    if not isinstance(step, tuple) or not step:
        return None
    for element in step:
        if not isinstance(element, str) or "\x00" in element:
            return None
    return (step[0],) + tuple(
        element.replace(home, _PH_HOME).replace(trap, _PH_TRAP)
        for element in step[1:]
    )


def _concrete_step(abstracted, home, trap):
    """Inverse of :func:`_abstract_step` for a given session id."""
    return (abstracted[0],) + tuple(
        element.replace(_PH_HOME, home).replace(_PH_TRAP, trap)
        for element in abstracted[1:]
    )


def _skeleton_key(spec):
    """Hashable identity of a spec minus its per-session fields.

    Returns ``None`` when the spec holds unhashable values (those specs
    take the whole-record pickle escape).
    """
    try:
        key = tuple(sorted(
            (key, value) for key, value in spec.items()
            if key not in ("sid", "steps")
        ))
        hash(key)
        return key
    except TypeError:
        return None


class SpecCodec:
    """Template-interning codec for generated session specs.

    ``templates`` is the picklable table :meth:`from_specs` builds from
    a stream — per-model spec *skeletons* (everything but ``sid`` and
    ``steps``) plus a *codebook* of abstracted step tuples.  The driver
    ships the table once in every worker's init payload; thereafter a
    spec crosses the pipe as a one-byte template id, the sid, and a
    ``uint16`` code per step.  A codec built with ``templates=None``
    has empty tables and escapes every record — correct, just not
    compact — so direct :class:`~repro.service.pool.ServicePool` users
    need not pre-scan their stream.
    """

    def __init__(self, templates=None):
        templates = templates or {"skeletons": [], "codebook": []}
        #: The picklable template table (ship this to workers).
        self.templates = templates
        self._skeletons = [dict(s) for s in templates["skeletons"]]
        self._codebook = [tuple(step) for step in templates["codebook"]]
        self._skeleton_ids = {}
        for index, skeleton in enumerate(self._skeletons):
            key = _skeleton_key(dict(skeleton, sid=0, steps=()))
            self._skeleton_ids[key] = index
        self._code_ids = {step: index for index, step in enumerate(self._codebook)}
        # Most generated steps carry no sid-derived substring at all
        # (the docroot stat chain, shared content reads), so their
        # abstracted form IS the concrete tuple.  Pre-splitting the
        # codebook lets encode/decode handle them with one dict/list
        # hit and no string substitution — the codec's hot path.
        self._static_ids = {
            step: index for step, index in self._code_ids.items()
            if not any(_PH_HOME in el or _PH_TRAP in el for el in step)
        }
        self._dynamic = [
            any(_PH_HOME in el or _PH_TRAP in el for el in step)
            for step in self._codebook
        ]

    @classmethod
    def from_specs(cls, specs):
        """Build a codec whose tables intern every spec in ``specs``.

        One pass: skeletons and abstracted steps are interned in first-
        appearance order, so equal streams build byte-identical tables
        (the differential suites rely on this determinism).  Streams
        richer than the table limits (255 skeletons / 65535 step
        shapes) simply leave the overflow to the escape path.
        """
        skeletons = []
        skeleton_ids = {}
        codebook = []
        code_ids = {}
        for spec in specs:
            key = _skeleton_key(spec)
            if key is not None and key not in skeleton_ids and len(skeletons) < _MAX_TEMPLATES:
                skeleton_ids[key] = len(skeletons)
                skeletons.append({
                    k: v for k, v in spec.items() if k not in ("sid", "steps")
                })
            sid = spec.get("sid")
            if not isinstance(sid, int):
                continue
            home = session_home(sid)
            trap = trap_path(sid)
            for step in spec.get("steps", ()):
                abstracted = _abstract_step(step, home, trap)
                if abstracted is not None and abstracted not in code_ids \
                        and len(codebook) < _MAX_CODES:
                    code_ids[abstracted] = len(codebook)
                    codebook.append(abstracted)
        return cls({"skeletons": skeletons, "codebook": codebook})

    def encode(self, spec):
        """One spec as a compact record (or a pickle escape).

        The interned layout is ``template_id(B) sid(I) nsteps(H)``,
        then ``nsteps`` ``uint16`` codes, then the pickled bodies of
        any escaped steps (code ``0xFFFF``) in step order, each with a
        ``<I`` length prefix.  Specs whose skeleton is not interned,
        whose sid exceeds ``u32``, or with more than 65534 steps take
        the whole-record escape: ``0xFF`` + pickle.
        """
        key = _skeleton_key(spec)
        template_id = self._skeleton_ids.get(key) if key is not None else None
        sid = spec.get("sid")
        steps = spec.get("steps")
        if (
            template_id is None
            or not isinstance(sid, int)
            or not 0 <= sid < 2 ** 32
            or not isinstance(steps, (list, tuple))
            or len(steps) >= _MAX_CODES
        ):
            return bytes([_SPEC_ESCAPE]) + pickle.dumps(
                spec, protocol=pickle.HIGHEST_PROTOCOL)
        home = session_home(sid)
        trap = trap_path(sid)
        codes = array("H")
        escapes = []
        static_ids = self._static_ids
        for step in steps:
            try:
                code = static_ids.get(step)
            except TypeError:  # unhashable contents -> escape path
                code = None
            if code is None:
                abstracted = _abstract_step(step, home, trap)
                if abstracted is not None:
                    code = self._code_ids.get(abstracted)
            if code is None:
                codes.append(_STEP_ESCAPE)
                blob = pickle.dumps(step, protocol=pickle.HIGHEST_PROTOCOL)
                escapes.append(_LEN.pack(len(blob)) + blob)
            else:
                codes.append(code)
        return b"".join([
            _SPEC_HEAD.pack(template_id, sid, len(codes)),
            codes.tobytes(),
        ] + escapes)

    def decode(self, payload):
        """Rebuild the spec dict :meth:`encode` serialized.

        Exact inverse — the decoded dict compares equal to the encoded
        one (the worker must execute precisely the session the driver
        admitted; the round trip is pinned by property tests).
        """
        if not payload:
            raise WireProtocolError("empty spec record")
        if payload[0] == _SPEC_ESCAPE:
            return pickle.loads(payload[1:])
        if len(payload) < _SPEC_HEAD.size:
            raise WireProtocolError("truncated spec record head")
        template_id, sid, nsteps = _SPEC_HEAD.unpack_from(payload, 0)
        if template_id >= len(self._skeletons):
            raise WireProtocolError(
                "template id {} outside the shipped table ({} entries)".format(
                    template_id, len(self._skeletons)))
        offset = _SPEC_HEAD.size
        codes = array("H")
        if offset + 2 * nsteps > len(payload):
            raise WireProtocolError("truncated spec step codes")
        codes.frombytes(payload[offset:offset + 2 * nsteps])
        offset += 2 * nsteps
        home = session_home(sid)
        trap = trap_path(sid)
        steps = []
        codebook = self._codebook
        dynamic = self._dynamic
        for code in codes:
            if code == _STEP_ESCAPE:
                if offset + _LEN.size > len(payload):
                    raise WireProtocolError("truncated step escape length")
                (length,) = _LEN.unpack_from(payload, offset)
                offset += _LEN.size
                steps.append(pickle.loads(payload[offset:offset + length]))
                offset += length
            else:
                if code >= len(codebook):
                    raise WireProtocolError(
                        "step code {} outside the shipped codebook".format(code))
                if dynamic[code]:
                    steps.append(_concrete_step(codebook[code], home, trap))
                else:
                    steps.append(codebook[code])
        spec = dict(self._skeletons[template_id])
        spec["sid"] = sid
        spec["steps"] = steps
        return spec


def step_kinds(spec):
    """The per-step op names of ``spec`` — what the driver retains to
    re-derive result verdict tuples (:func:`decode_result` never ships
    them back over the pipe)."""
    return [step[0] for step in spec["steps"]]


def encode_result(result, strings=None):
    """One session result as a compact record (or a pickle escape).

    Layout (after a one-byte ``binary``/``pickled`` flag):
    ``sid(I) nverdicts(H)``; a status table of the *non-ok* statuses
    appearing in the record (count byte, then length-prefixed utf-8);
    the exceptional verdicts as ``(index(H), status_index(B))`` pairs —
    every index not listed is ``"ok"``, the run-length-encoded common
    case; ``nlat(I)`` and the latency samples as a packed ``array('d')``
    buffer; ``mediations(I) drops(I)``; and the audit section —
    structured rows interned against the shared ``strings`` table
    (:func:`_encode_audit`), with a pickled escape for foreign row
    shapes.  Results that exceed a field range (e.g. 65535+ steps)
    fall back to the whole-record pickle escape byte.
    """
    verdicts = result["verdicts"]
    statuses = []
    status_ids = {}
    exceptions = []
    regular = (
        isinstance(result.get("sid"), int)
        and 0 <= result["sid"] < 2 ** 32
        and len(verdicts) < 0xFFFF
        and 0 <= result["mediations"] < 2 ** 32
        and 0 <= result["drops"] < 2 ** 32
    )
    if regular:
        for position, verdict in enumerate(verdicts):
            if (
                not isinstance(verdict, tuple)
                or len(verdict) != 3
                or verdict[0] != position
                or not isinstance(verdict[2], str)
            ):
                regular = False
                break
            status = verdict[2]
            if status == "ok":
                continue
            index = status_ids.get(status)
            if index is None:
                encoded = status.encode("utf-8")
                if len(encoded) > 0xFF or len(statuses) >= 0xFF:
                    regular = False
                    break
                index = status_ids[status] = len(statuses)
                statuses.append(encoded)
            exceptions.append((position, index))
    if not regular:
        return bytes([_RESULT_PICKLED]) + pickle.dumps(
            result, protocol=pickle.HIGHEST_PROTOCOL)
    latencies = array("d", result["latencies"])
    sid = result["sid"]
    audit_section = _encode_audit(
        result["audit"], strings if strings is not None else _EMPTY_STRINGS,
        sid, session_home(sid), trap_path(sid))
    parts = [
        bytes([_RESULT_BINARY]),
        _RESULT_HEAD.pack(result["sid"], len(verdicts)),
        bytes([len(statuses)]),
    ]
    for encoded in statuses:
        parts.append(bytes([len(encoded)]))
        parts.append(encoded)
    parts.append(struct.pack("<H", len(exceptions)))
    for position, index in exceptions:
        parts.append(struct.pack("<HB", position, index))
    parts.append(_LEN.pack(len(latencies)))
    parts.append(latencies.tobytes())
    parts.append(_RESULT_TAIL.pack(result["mediations"], result["drops"]))
    parts.append(audit_section)
    return b"".join(parts)


def decode_result(payload, kinds_by_sid, strings=None):
    """Rebuild a session result from its record.

    ``kinds_by_sid`` maps sid to the step-kind list of the spec the
    driver submitted (:func:`step_kinds`) — the verdict tuples are
    reconstituted as ``(index, kind, status)`` from it, which is the
    compression: ops never cross the pipe twice.  The record's verdict
    count must match the retained kind list exactly.  ``strings`` must
    be the same shared table the encoder used (both ends derive it
    from ``rules_text`` via :func:`audit_strings`).
    """
    if not payload:
        raise WireProtocolError("empty result record")
    if payload[0] == _RESULT_PICKLED:
        return pickle.loads(payload[1:])
    offset = 1
    sid, nverdicts = _RESULT_HEAD.unpack_from(payload, offset)
    offset += _RESULT_HEAD.size
    nstatuses = payload[offset]
    offset += 1
    statuses = []
    for _ in range(nstatuses):
        length = payload[offset]
        offset += 1
        statuses.append(payload[offset:offset + length].decode("utf-8"))
        offset += length
    (nexceptions,) = struct.unpack_from("<H", payload, offset)
    offset += 2
    exceptional = {}
    for _ in range(nexceptions):
        position, index = struct.unpack_from("<HB", payload, offset)
        offset += 3
        exceptional[position] = statuses[index]
    (nlatencies,) = _LEN.unpack_from(payload, offset)
    offset += _LEN.size
    latencies = array("d")
    latencies.frombytes(payload[offset:offset + 8 * nlatencies])
    offset += 8 * nlatencies
    mediations, drops = _RESULT_TAIL.unpack_from(payload, offset)
    offset += _RESULT_TAIL.size
    audit, offset = _decode_audit(
        payload, offset, strings if strings is not None else _EMPTY_STRINGS,
        sid, session_home(sid), trap_path(sid))
    if offset != len(payload):
        raise WireProtocolError(
            "{} trailing bytes after the result record".format(len(payload) - offset))
    kinds = kinds_by_sid[sid]
    if len(kinds) != nverdicts:
        raise WireProtocolError(
            "result for sid {} carries {} verdicts but the submitted spec "
            "had {} steps".format(sid, nverdicts, len(kinds)))
    verdicts = [
        (index, kinds[index], exceptional.get(index, "ok"))
        for index in range(nverdicts)
    ]
    return {
        "sid": sid,
        "verdicts": verdicts,
        "audit": audit,
        "latencies": list(latencies),
        "mediations": mediations,
        "drops": drops,
    }
