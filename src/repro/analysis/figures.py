"""Plain-text figure rendering: horizontal bar charts for Figures 4-5.

Keeps the benchmark artifact self-contained (no plotting dependencies):
each figure's data is also rendered as labelled ASCII bars so the shape
the paper plots is visible directly in ``benchmarks/results.txt``.
"""

from __future__ import annotations

#: Width of the bar area in characters.
BAR_WIDTH = 48


def bar_chart(series, title=None, unit=""):
    """Render labelled horizontal bars.

    Args:
        series: iterable of ``(label, value)`` pairs.
        title: optional chart heading.
        unit: suffix printed after each value.
    """
    items = [(str(label), float(value)) for label, value in series]
    if not items:
        return title or ""
    peak = max(value for _label, value in items) or 1.0
    label_width = max(len(label) for label, _value in items)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for label, value in items:
        filled = int(round(value / peak * BAR_WIDTH))
        bar = "#" * max(filled, 1 if value > 0 else 0)
        lines.append(
            "{:<{w}}  {:<{bw}}  {:.2f}{}".format(label, bar, value, unit, w=label_width, bw=BAR_WIDTH)
        )
    return "\n".join(lines)


def grouped_bar_chart(groups, title=None, unit=""):
    """Render groups of bars (one blank-separated block per group).

    Args:
        groups: iterable of ``(group_label, [(label, value), ...])``.
    """
    blocks = []
    if title:
        blocks.append(title + "\n" + "=" * len(title))
    for group_label, series in groups:
        blocks.append(bar_chart(series, title=str(group_label), unit=unit))
    return "\n\n".join(blocks)
