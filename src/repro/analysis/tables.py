"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations


def overhead_pct(baseline, value):
    """Percentage overhead of ``value`` relative to ``baseline``."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline * 100.0


def _cell(value):
    if isinstance(value, float):
        return "{:.2f}".format(value)
    return str(value)


def format_table(headers, rows, title=None):
    """Render an aligned text table (no external dependencies)."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
