"""Denial-log analysis: how the paper *found* new vulnerabilities.

E8 (Icecat) was discovered because rule R1 "silently blocked this
attack; we noticed it later in our denial logs", and E9 surfaced from
examining accesses matching the system-wide safe-open rules.  This
module turns the kernel audit trail's firewall drops into aggregated
reports an analyst (or an OS distributor triaging a deployment) reads.
"""

from __future__ import annotations

from typing import Dict


class DenialReport:
    """Aggregated drops for one (program, operation, rule) site."""

    __slots__ = ("comm", "op", "rule_text", "count", "paths", "first_time", "last_time")

    def __init__(self, comm, op, rule_text):
        self.comm = comm
        self.op = op
        self.rule_text = rule_text
        self.count = 0
        self.paths = set()
        self.first_time = None
        self.last_time = None

    def add(self, record):
        self.count += 1
        if record.path:
            self.paths.add(record.path)
        if self.first_time is None:
            self.first_time = record.time
        self.last_time = record.time

    def summary(self):
        return "{} x {} {} on {} (rule: {})".format(
            self.count, self.comm, self.op, sorted(self.paths) or "?", self.rule_text or "?"
        )


def _rule_text_from_detail(detail):
    marker = "rule matched: "
    if detail and detail.startswith(marker):
        return detail[len(marker):]
    return None


def collect_denials(kernel):
    """Group the audit trail's ``pf_drop`` records into reports."""
    reports = {}  # type: Dict[tuple, DenialReport]
    for record in kernel.audit:
        if record.decision != "pf_drop":
            continue
        rule_text = _rule_text_from_detail(record.detail)
        key = (record.comm, record.op, rule_text)
        report = reports.get(key)
        if report is None:
            report = reports[key] = DenialReport(record.comm, record.op, rule_text)
        report.add(record)
    return sorted(reports.values(), key=lambda r: -r.count)


def suspected_vulnerabilities(kernel, benign_programs=()):
    """Reports for programs *not* expected to trip any rule.

    A denial from a program the deployment considers benign means one
    of two things — a false positive in the rule base, or (as with E8)
    a real, previously-unknown vulnerability the firewall just blocked.
    Either way it deserves a human.
    """
    benign = set(benign_programs)
    return [report for report in collect_denials(kernel) if not benign or report.comm in benign]


def render_denials(reports):
    if not reports:
        return "no firewall denials recorded"
    return "\n".join(report.summary() for report in reports)
