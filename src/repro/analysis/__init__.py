"""Rendering and shape-checking helpers shared by the benchmarks."""

from repro.analysis.tables import format_table, overhead_pct

__all__ = ["format_table", "overhead_pct"]
