"""lmbench-style syscall microbenchmarks (Table 6).

Each operation is one lmbench row: ``null`` (getpid), ``stat``,
``read``, ``write``, ``fstat``, ``open+close``, ``fork+exit``,
``fork+execve`` and ``fork+sh -c``.  A :class:`LmbenchSuite` prepares a
world under one Table 6 column configuration and exposes the operations
as zero-argument callables for the timing harness.
"""

from __future__ import annotations

import gc
import time

from repro.api import Session
from repro.rulesets.generated import install_full_rulebase

#: Table 6 column -> (engine preset, full rules?, instrumented?).
#: The preset string is what ``Session(engine=...)`` resolves; note
#: the naming wrinkle: lmbench's "BASE" column is the *optimized*
#: engine with no rules installed (preset ``"EPTSPC"``), while the
#: preset registry's ``"BASE"`` spelling means the unoptimized walker.
#: ``instrumented`` turns the observability layer fully on (decision
#: tracing + metrics registry), measuring its worst-case overhead
#: against COMPILED — the observability twin of the paper's ladder.
TABLE6_COLUMNS = {
    "DISABLED": ("DISABLED", False, False),
    "BASE": ("EPTSPC", False, False),
    "FULL": ("FULL", True, False),
    "CONCACHE": ("CONCACHE", True, False),
    "LAZYCON": ("LAZYCON", True, False),
    "EPTSPC": ("EPTSPC", True, False),
    "COMPILED": ("COMPILED", True, False),
    "JITTED": ("JITTED", True, False),
    "TABLED": ("TABLED", True, False),
    "TRACED": ("COMPILED", True, True),
}

#: The paper's measurement file (average path length on their system
#: was 2.3 components; /etc/passwd has 2).
TARGET_FILE = "/etc/passwd"


class LmbenchSuite:
    """One configured world plus the nine operations."""

    def __init__(self, column="DISABLED", rule_count=None):
        preset, full_rules, instrumented = TABLE6_COLUMNS[column]
        self.column = column
        rules = None
        if full_rules:
            if rule_count is None:
                rules = install_full_rulebase
            else:
                def rules(firewall):
                    install_full_rulebase(firewall, size=rule_count)
        session = Session(
            engine=preset,
            rules=rules,
            metered=instrumented,
            traced=instrumented,
        )
        self.kernel = session.kernel
        self.firewall = session.firewall
        self.proc = self.kernel.spawn("lmbench", uid=0, label="unconfined_t", binary_path="/bin/sh")
        # Realistic call depth: entrypoint collection cost scales with
        # stack depth on real systems, and a syscall is never issued
        # from main() in practice.
        for i in range(25):
            self.proc.call(self.proc.binary, 0x900000 + i * 0x40, function="f{}".format(i))
        # Pre-open a descriptor for read/write/fstat rows.
        self.fd = self.kernel.sys.open(self.proc, TARGET_FILE)
        self._scratch = self.kernel.add_file("/tmp/lmbench-scratch", b"x" * 64, uid=0, mode=0o600)
        self.wfd = self.kernel.sys.open(self.proc, "/tmp/lmbench-scratch", flags=0x1)  # O_WRONLY

    # ---- the nine operations ----------------------------------------

    def op_null(self):
        self.kernel.sys.getpid(self.proc)

    def op_stat(self):
        self.kernel.sys.stat(self.proc, TARGET_FILE)

    def op_read(self):
        self.kernel.sys.read(self.proc, self.fd, 16)

    def op_write(self):
        self.kernel.sys.write(self.proc, self.wfd, b"y")

    def op_fstat(self):
        self.kernel.sys.fstat(self.proc, self.fd)

    def op_open_close(self):
        fd = self.kernel.sys.open(self.proc, TARGET_FILE)
        self.kernel.sys.close(self.proc, fd)

    def op_fork_exit(self):
        child = self.kernel.sys.fork(self.proc)
        self.kernel.sys.exit(child, 0)

    def op_fork_execve(self):
        child = self.kernel.sys.fork(self.proc)
        self.kernel.sys.execve(child, "/bin/sh")
        self.kernel.sys.exit(child, 0)

    def op_fork_sh(self):
        """fork + exec /bin/sh -c 'true': exec plus a little shell work."""
        child = self.kernel.sys.fork(self.proc)
        self.kernel.sys.execve(child, "/bin/sh", argv=["/bin/sh", "-c", "true"])
        self.kernel.sys.stat(child, "/bin/sh")
        self.kernel.sys.getpid(child)
        self.kernel.sys.exit(child, 0)

    def operations(self):
        """The Table 6 rows, in print order."""
        return [
            ("null", self.op_null),
            ("stat", self.op_stat),
            ("read", self.op_read),
            ("write", self.op_write),
            ("fstat", self.op_fstat),
            ("open+close", self.op_open_close),
            ("fork+exit", self.op_fork_exit),
            ("fork+execve", self.op_fork_execve),
            ("fork+sh -c", self.op_fork_sh),
        ]


LMBENCH_OPS = [name for name, _fn in LmbenchSuite("DISABLED").operations()]


def time_operation(fn, iterations=2000, warmup=50):
    """Average microseconds per call (steady-state, GC-quiesced).

    The warmup pass populates every lazy memo (dispatch tuples,
    generated code, context caches) before the clock starts, and the
    collector is disabled around the timed loop so a GC cycle landing
    inside one cell's measurement cannot masquerade as an engine
    effect.  The caller's GC state is restored afterwards.
    """
    for _ in range(warmup):
        fn()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        elapsed = time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()
    return elapsed / iterations * 1e6


def run_table6(iterations=2000, columns=None, rule_count=None, repeats=7, samples_out=None):
    """Measure every (operation, column) cell.

    The grid is timed in ``repeats`` interleaved passes over the
    columns and each cell keeps its best pass: a single column-major
    sweep lets allocator/GC drift over the run masquerade as an effect
    of whichever columns happen to be measured last.  ``iterations`` is
    the total per-cell budget, split across the passes.

    When ``samples_out`` is a dict, every per-pass sample is appended
    into ``samples_out[op_name][column]`` so callers can compute error
    bars (per-row stdev in ``BENCH_hotpath.json``) alongside the
    best-of-N point estimates.

    Returns ``{op_name: {column: microseconds}}``.
    """
    columns = list(columns or TABLE6_COLUMNS)
    per_pass = max(1, iterations // repeats)
    suites = {column: LmbenchSuite(column, rule_count=rule_count) for column in columns}
    results = {name: {} for name in LMBENCH_OPS}
    for _ in range(repeats):
        for column in columns:
            gc.collect()
            for name, fn in suites[column].operations():
                sample = time_operation(fn, iterations=per_pass)
                if samples_out is not None:
                    samples_out.setdefault(name, {}).setdefault(column, []).append(sample)
                best = results[name].get(column)
                if best is None or sample < best:
                    results[name][column] = sample
    return results
