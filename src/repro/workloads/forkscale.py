"""Fork-scale workload: the CoW state substrate under pre-fork load.

Models the pre-fork server shape the LSM-overhead analysis identifies
as the worst case for per-process security state: one long-lived
parent with a *warm* firewall state bundle — a large ``STATE``
dictionary (per-resource TOCTTOU check identities, one entry per
inode the parent has mediated) and a warm negative-decision cache
(entrypoint head sets accumulated over the parent's lifetime) —
forking thousands of short-lived workers that mostly never write that
state.

Two fork modes are measured against each other
(``kernel.fork_state_mode``):

- ``"eager"`` — the deep-copy baseline: every fork pays the parent's
  whole state size (one dict copy plus element-wise decision-entry
  copies with their head sets), and every live child holds a private
  replica;
- ``"cow"`` (default) — the :mod:`repro.firewall.procstate`
  substrate: O(1) structural share at fork, copy deferred to the
  first mutation on either side — which for write-free workers never
  comes.

Used by ``benchmarks/bench_fork_scale.py`` (which emits
``BENCH_fork_scale.json``) and by ``pfctl bench-fork``.  Timings use
``time.perf_counter`` around the fork loop only; memory is reported
two ways — :func:`substrate_bytes` (exact unique-storage accounting
over the live process set, the basis of the sub-linear-growth gate)
and an optional ``tracemalloc`` pass (whole-heap view, kept out of
the timed pass because tracing skews the fork loop).
"""

from __future__ import annotations

import sys
import time
import tracemalloc

from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.firewall.procstate import reset_substrate_stats, substrate_stats
from repro.security.lsm import Op
from repro.world import build_world, spawn_root_shell

#: Default size of the warm parent state: STATE entries model one
#: recorded TOCTTOU check identity per mediated resource; the decision
#: cache models ``cache_ops`` operation kinds each memoized for
#: ``heads_per_op`` distinct entrypoint heads (the engine caps a head
#: set at 1024).
DEFAULT_STATE_KEYS = 8192
DEFAULT_CACHE_OPS = 4
DEFAULT_HEADS_PER_OP = 512

#: Operation kinds used to shape the warm decision cache.
_CACHE_OPS = (Op.FILE_GETATTR, Op.FILE_OPEN, Op.DIR_SEARCH, Op.FILE_READ)


def build_fork_parent(
    state_keys=DEFAULT_STATE_KEYS,
    cache_ops=DEFAULT_CACHE_OPS,
    heads_per_op=DEFAULT_HEADS_PER_OP,
):
    """A kernel plus one parent with a warm firewall state bundle.

    No firewall is attached and audit is off, so the measured fork
    path is the syscall layer plus the state substrate — the thing
    under test — not rule evaluation.  The warm state is synthesized
    directly (values are the resolved scalars a STATE target stores:
    inode numbers), shaped like a long-lived worker's would be.
    """
    kernel = build_world()
    kernel.audit_enabled = False
    parent = spawn_root_shell(kernel, comm="prefork-parent")
    for i in range(state_keys):
        parent.pf.state[(0xBEEF, i)] = 0x100000 + i
    ops = _CACHE_OPS[: max(0, min(cache_ops, len(_CACHE_OPS)))]
    if ops:
        stamp = object()  # stands in for the rule-base stamp
        entries = {}
        for op in ops:
            entries[(op, parent.label)] = {
                ("/bin/sh", 0x1000 + j) for j in range(heads_per_op)
            }
        parent.pf.decision_cache = (stamp, entries)
    return kernel, parent


def substrate_bytes(processes):
    """Exact bytes held by the firewall state of ``processes``.

    Counts each distinct backing container once (by identity), which
    is what makes structural sharing visible: after a CoW fork storm
    the shared dict is counted once across every relative, while the
    eager baseline counts one full replica per process.  Covers the
    STATE backing dicts, decision-entry dicts with their head sets,
    and context-cache tuples; per-``Process``/``ProcState`` object
    overhead is excluded (identical across modes).
    """
    seen = set()
    total = 0

    def _add(obj):
        nonlocal total
        if obj is None or id(obj) in seen:
            return
        seen.add(id(obj))
        total += sys.getsizeof(obj)

    for proc in processes:
        pf = proc.pf
        _add(pf.state._data)
        dcache = pf.decision_cache
        if dcache is not None:
            _add(dcache[1])
            for value in dcache[1].values():
                if value is not True:
                    _add(value)
        if pf.context_cache is not None:
            _add(pf.context_cache)
            _add(pf.context_cache[1])
    return total


def measure_fork_point(
    mode,
    live,
    state_keys=DEFAULT_STATE_KEYS,
    cache_ops=DEFAULT_CACHE_OPS,
    heads_per_op=DEFAULT_HEADS_PER_OP,
    trace_heap=False,
):
    """Fork ``live`` children under ``mode`` and measure the storm.

    Returns a dict: ``forks_per_sec`` / ``us_per_fork`` (timed pass),
    ``state_bytes`` (unique-storage accounting over parent plus live
    children), the substrate counters for the storm, and — when
    ``trace_heap`` is set — ``heap_bytes``, the ``tracemalloc`` delta
    across the loop (run separately from any throughput number you
    intend to quote: tracing makes every allocation slower).
    """
    kernel, parent = build_fork_parent(state_keys, cache_ops, heads_per_op)
    kernel.fork_state_mode = mode
    fork = kernel.sys.fork
    reset_substrate_stats()
    if trace_heap:
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
    started = time.perf_counter()
    children = [fork(parent) for _ in range(live)]
    elapsed = time.perf_counter() - started
    result = {
        "mode": mode,
        "live": live,
        "state_keys": state_keys,
        "elapsed_s": round(elapsed, 6),
        "forks_per_sec": round(live / elapsed, 1) if elapsed else float("inf"),
        "us_per_fork": round(elapsed / live * 1e6, 3) if live else 0.0,
        "state_bytes": substrate_bytes([parent] + children),
        "substrate": substrate_stats(),
    }
    if trace_heap:
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        result["heap_bytes"] = after - before
    return result


def fork_parity_observables(mode, workers=16):
    """Verdict/log/state observables of a fork workload under ``mode``.

    A parent records a STATE invariant (socket inode at bind, the
    dbus TOCTTOU template), forks ``workers`` children, and every
    child exercises three verdicts against it: a check that *drops
    only if the invariant was inherited* (chmod of a decoy socket the
    recorded inode no longer matches — state loss would read as a
    missing key, which never matches, i.e. a silent allow), the
    matching allow on the recorded socket, and a fresh violation
    after the child overwrites the key with its own bind.  Returns
    verdict strings, time-stripped drop records, engine counters, and
    each child's view of the STATE key, for exact comparison between
    the CoW and eager modes.
    """
    kernel = build_world()
    firewall = ProcessFirewall(EngineConfig.compiled())
    kernel.attach_firewall(firewall)
    kernel.fork_state_mode = mode
    for text in (
        "pftables -A input -o SOCKET_BIND -j STATE --set --key 0xbeef --value C_INO",
        "pftables -A input -o SOCKET_SETATTR -m STATE --key 0xbeef --cmp C_INO --nequal -j DROP",
    ):
        firewall.install(text)
    parent = spawn_root_shell(kernel, comm="prefork-parent")
    kernel.sys.bind(parent, "/tmp/decoy.sock")
    kernel.sys.bind(parent, "/tmp/parent.sock")  # records this C_INO
    verdicts = []
    state_views = []
    for n in range(workers):
        child = kernel.sys.fork(parent)
        state_views.append(dict(child.pf.state))
        # Inheritance-sensitive: the recorded inode is parent.sock's,
        # so the decoy mismatches -> DROP.  A child that lost pf_state
        # would see a missing key (never matches) and sail through.
        try:
            kernel.sys.chmod(child, "/tmp/decoy.sock", 0o600)
            verdicts.append("allow")
        except Exception as exc:
            verdicts.append(type(exc).__name__)
        # The recorded socket itself still matches -> allow.
        try:
            kernel.sys.chmod(child, "/tmp/parent.sock", 0o600)
            verdicts.append("allow")
        except Exception as exc:
            verdicts.append(type(exc).__name__)
        # CoW break: the child's own bind overwrites the key (first
        # write after fork), after which the parent's socket mismatches.
        kernel.sys.bind(child, "/tmp/child{}.sock".format(n))
        try:
            kernel.sys.chmod(child, "/tmp/parent.sock", 0o600)
            verdicts.append("allow")
        except Exception as exc:
            verdicts.append(type(exc).__name__)
    drops = [
        {key: value for key, value in record.items() if key != "time"}
        for record in firewall.audit.records(kind="drop")
    ]
    stats = firewall.stats
    counters = {
        "invocations": stats.invocations,
        "accepts": stats.accepts,
        "drops": stats.drops,
        "decision_cache_hits": stats.decision_cache_hits,
    }
    return {
        "verdicts": verdicts,
        "drops": drops,
        "counters": counters,
        "state_views": state_views,
    }
