"""Figure 5: SymLinksIfOwnerMatch in the program vs as a firewall rule.

The paper serves a static page at path depth ``n`` with ``c``
concurrent clients and compares requests/second when the per-component
owner checks run as Apache code (extra ``lstat``/``stat`` per
component, racy) versus as firewall rule R8 (zero extra syscalls,
atomic).  The firewall side wins, and the gap grows with both ``n``
(more components to check) and ``c`` (more wasted work under load).
"""

from __future__ import annotations

import time

from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.programs.apache import ApacheServer
from repro.rulesets.default import RULES_R1_R12
from repro.world import build_world

#: The paper's parameter grid.
FIGURE5_CLIENTS = (1, 10, 200)
FIGURE5_PATH_LENGTHS = (1, 3, 5, 9)

#: Rule R8 — the firewall-side SymLinksIfOwnerMatch.
RULE_R8 = RULES_R1_R12[7]


def _build_site(kernel, depth):
    """Create ``/var/www/html/d1/d2/.../index.html`` at ``depth``."""
    base = "/var/www/html"
    url = ""
    for i in range(1, depth):
        url += "/d{}".format(i)
        kernel.mkdirs(base + url, label="httpd_sys_content_t")
    url += "/index.html"
    kernel.add_file(base + url, b"<html>benchmark page</html>", label="httpd_sys_content_t")
    return url


def _build_server(mode, depth, clients):
    """Returns ``(servers, url)`` for one Figure 5 cell."""
    kernel = build_world()
    kernel.audit_enabled = False
    if mode == "pf":
        firewall = ProcessFirewall(EngineConfig.optimized())
        kernel.attach_firewall(firewall)
        firewall.install(RULE_R8)
    elif mode != "program":
        raise ValueError("mode must be 'program' or 'pf'")
    url = _build_site(kernel, depth)
    servers = []
    for _ in range(max(1, min(clients, 32))):  # worker pool, capped
        proc = kernel.spawn("apache2", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")
        servers.append(
            ApacheServer(kernel, proc, symlinks_if_owner_match=(mode == "program"))
        )
    return servers, url


def apache_requests_per_second(mode, depth=1, clients=1, requests=300):
    """Requests/second for one (mode, n, c) cell."""
    servers, url = _build_server(mode, depth, clients)
    # Warmup.
    for server in servers:
        assert server.serve(url).status == 200
    start = time.perf_counter()
    for i in range(requests):
        response = servers[i % len(servers)].serve(url)
        if response.status != 200:
            raise AssertionError("benchmark page failed: {}".format(response.status))
    elapsed = time.perf_counter() - start
    return requests / elapsed if elapsed else float("inf")


def figure5_sweep(clients=FIGURE5_CLIENTS, path_lengths=FIGURE5_PATH_LENGTHS, requests=300):
    """The full Figure 5 grid.

    Returns a list of dicts: one per (c, n) with both modes' req/s and
    the firewall's improvement percentage.
    """
    rows = []
    for c in clients:
        for n in path_lengths:
            program = apache_requests_per_second("program", depth=n, clients=c, requests=requests)
            pf = apache_requests_per_second("pf", depth=n, clients=c, requests=requests)
            rows.append(
                {
                    "clients": c,
                    "path_length": n,
                    "program_rps": program,
                    "pf_rps": pf,
                    "pf_improvement_pct": (pf - program) / program * 100.0,
                }
            )
    return rows
