"""Macrobenchmarks (Table 7): Apache build, boot, and web serving.

Syscall-trace replays shaped like the paper's workloads:

- **Apache Build** — compiler-style activity: read sources, stat
  headers, create objects, fork/exec compiler processes (syscall-dense,
  path-resolution-heavy);
- **Boot** — service startup: fork+exec daemons, dynamic linking,
  config reads, socket binds (exercises many different rules);
- **Web1 / Web1000** — a LAMP-ish request loop at low and high
  concurrency, reporting both latency and throughput.
"""

from __future__ import annotations

import time
from repro.api import Session
from repro.programs.apache import ApacheServer
from repro.programs.ld_so import DynamicLinker
from repro.rulesets.generated import install_full_rulebase
from repro.vfs.file import OpenFlags
from repro.workloads.replay import record_syscalls
from repro.world import build_world

#: Table 7 configurations.
TABLE7_CONFIGS = ("Without PF", "PF Base", "PF Full")

#: Profiles understood by :func:`record_scale_trace`.
SCALE_PROFILES = ("mixed", "null")


def _configure(config):
    """Build a world under one Table 7 configuration.

    Assembly goes through the :class:`repro.api.Session` facade:
    "PF Base" is the EPTSPC engine with no rules, "PF Full" installs
    the generated 1218-rule base, and "Without PF" is a bare kernel
    with no firewall attached at all.
    """
    if config == "Without PF":
        kernel = build_world()
        kernel.audit_enabled = False
        return kernel
    session = Session(
        engine="EPTSPC",
        rules=install_full_rulebase if config == "PF Full" else None,
        kernel_audit=False,
    )
    return session.kernel


class MacrobenchSuite:
    """Builds and times the Table 7 workloads for one configuration."""

    def __init__(self, config="Without PF"):
        if config not in TABLE7_CONFIGS:
            raise ValueError("unknown Table 7 config {!r}".format(config))
        self.config = config
        self.kernel = _configure(config)
        self._prepare_tree()

    def _prepare_tree(self):
        kernel = self.kernel
        kernel.mkdirs("/usr/src/httpd", label="usr_t")
        kernel.mkdirs("/usr/include", label="usr_t")
        for i in range(20):
            kernel.add_file("/usr/include/hdr{}.h".format(i), b"#define X", label="usr_t")
        for i in range(60):
            kernel.add_file("/usr/src/httpd/src{}.c".format(i), b"int main(){}", label="usr_t")
        kernel.mkdirs("/usr/src/httpd/obj", label="usr_t")
        for i in range(24):
            kernel.add_file("/etc/svc{}.conf".format(i), b"option=1\n", label="etc_t")

    # ------------------------------------------------------------------
    # workloads
    # ------------------------------------------------------------------

    def apache_build(self, files=60):
        """Compile-like loop; returns wall-clock seconds."""
        kernel = self.kernel
        make = kernel.spawn("make", uid=0, label="unconfined_t", binary_path="/bin/sh")
        start = time.perf_counter()
        for i in range(files):
            cc = kernel.sys.fork(make)
            kernel.sys.execve(cc, "/bin/sh", argv=["cc", "src{}.c".format(i)])
            src = "/usr/src/httpd/src{}.c".format(i)
            fd = kernel.sys.open(cc, src)
            kernel.sys.read(cc, fd)
            kernel.sys.close(cc, fd)
            for h in range(4):
                kernel.sys.stat(cc, "/usr/include/hdr{}.h".format((i + h) % 20))
            obj = "/usr/src/httpd/obj/src{}.o".format(i)
            fd = kernel.sys.open(cc, obj, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_TRUNC)
            kernel.sys.write(cc, fd, b"\x7fELFobj")
            kernel.sys.close(cc, fd)
            kernel.sys.exit(cc, 0)
        kernel.sys.exit(make, 0)
        return time.perf_counter() - start

    def boot(self, services=24):
        """Service-startup loop; returns wall-clock seconds."""
        kernel = self.kernel
        init = kernel.spawn("init", uid=0, label="init_t", binary_path="/bin/sh")
        start = time.perf_counter()
        for i in range(services):
            daemon = kernel.sys.fork(init)
            kernel.sys.execve(daemon, "/bin/sh", argv=["svc{}".format(i)])
            linker = DynamicLinker(kernel, daemon)
            linker.load_library("libc.so.6")
            fd = kernel.sys.open(daemon, "/etc/svc{}.conf".format(i))
            kernel.sys.read(daemon, fd)
            kernel.sys.close(daemon, fd)
            if i % 3 == 0:
                kernel.sys.bind(daemon, "/var/run/svc{}.sock".format(i), mode=0o700)
        return time.perf_counter() - start

    def web(self, requests=200, clients=1):
        """Request loop; returns ``(latency_ms, throughput_kbps)``.

        ``clients`` worker processes take requests round-robin, like
        ApacheBench's concurrency setting.
        """
        kernel = self.kernel
        servers = []
        for c in range(max(1, clients)):
            proc = kernel.spawn("apache2", uid=0, label="httpd_t", binary_path="/usr/bin/apache2")
            servers.append(ApacheServer(kernel, proc))
        body_bytes = 0
        start = time.perf_counter()
        for i in range(requests):
            response = servers[i % len(servers)].serve("/index.html")
            body_bytes += len(response.body)
        elapsed = time.perf_counter() - start
        latency_ms = elapsed / requests * 1000.0
        throughput_kbps = (body_bytes / 1024.0) / elapsed if elapsed else 0.0
        return latency_ms, throughput_kbps


def build_scale_world(sessions=4):
    """World for the sharded macro-replay workload.

    Each of the ``sessions`` server sessions gets its own subtree under
    ``/srv/scale/s<i>`` — sessions share no paths, so a replay sharded
    by process lineage touches disjoint VFS state and must produce the
    same verdict stream as a serial replay.  The parallel worker
    rebuilds this exact world (registered as ``"macro_scale"`` in
    ``repro.parallel.worker``) before replaying its shard.
    """
    kernel = build_world()
    kernel.audit_enabled = False
    kernel.mkdirs("/srv/scale", label="var_t")
    for session in range(sessions):
        base = "/srv/scale/s{}".format(session)
        kernel.mkdirs(base, label="var_t")
        for i in range(8):
            kernel.add_file("{}/data{}.txt".format(base, i), b"payload", label="var_t")
        kernel.add_file("{}/app.conf".format(base), b"option=1\n", label="etc_t")
    return kernel


def record_scale_trace(sessions=4, loops=40, profile="mixed"):
    """Record the scaling workload: ``sessions`` independent lineages.

    Spawns one root process per session and drives each through
    ``loops`` iterations of session-local work, recording everything
    (spawn specs included) into a replayable :class:`~repro.workloads.
    replay.Trace`.  Profiles:

    - ``"mixed"`` — open/read/write/stat plus periodic fork+exec
      children and a ``chmod`` every few loops: the Table 7-shaped
      server workload, exercising the batched fast path's mutation
      fallback;
    - ``"null"`` — getpid/stat/access dominated with no mutating
      records: the null-heavy trace the CI scaling smoke job uses,
      where per-call fixed cost dominates and batching pays most.

    Sessions interleave round-robin, so a serial replay alternates
    between lineages while a sharded one runs each lineage densely —
    the verdict streams must still match entry-for-entry.
    """
    if profile not in SCALE_PROFILES:
        raise ValueError("unknown scale profile {!r} (expected one of {})".format(
            profile, "/".join(SCALE_PROFILES)))
    kernel = build_scale_world(sessions)
    with record_syscalls(kernel) as trace:
        roots = [
            kernel.spawn("scale{}".format(session), uid=0, label="unconfined_t",
                         binary_path="/bin/sh")
            for session in range(sessions)
        ]
        for loop in range(loops):
            for session, proc in enumerate(roots):
                base = "/srv/scale/s{}".format(session)
                if profile == "null":
                    for _ in range(4):
                        kernel.sys.getpid(proc)
                    kernel.sys.stat(proc, "{}/data{}.txt".format(base, loop % 8))
                    kernel.sys.access(proc, "{}/app.conf".format(base))
                    continue
                fd = kernel.sys.open(proc, "{}/data{}.txt".format(base, loop % 8))
                kernel.sys.read(proc, fd)
                kernel.sys.close(proc, fd)
                kernel.sys.stat(proc, "{}/app.conf".format(base))
                out = "{}/out{}.log".format(base, loop % 4)
                fd = kernel.sys.open(
                    proc, out,
                    flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
                kernel.sys.write(proc, fd, b"entry\n")
                kernel.sys.close(proc, fd)
                if loop % 5 == 0:
                    worker = kernel.sys.fork(proc)
                    kernel.sys.execve(worker, "/bin/sh", argv=["work"])
                    kernel.sys.getpid(worker)
                    kernel.sys.exit(worker, 0)
                if loop % 7 == 0:
                    kernel.sys.chmod(proc, "{}/app.conf".format(base), 0o640)
    return trace


def run_table7(build_files=60, boot_services=24, web_requests=200, repeats=3):
    """Measure all Table 7 rows under the three configurations.

    Returns ``{row_name: {config: value}}``; lower is better for times
    and latency, higher for throughput.  Each cell is the best of
    ``repeats`` runs (fresh world each run) — single runs on a shared
    machine are too noisy for overhead comparisons.
    """
    rows = {
        "Apache Build (s)": {},
        "Boot (s)": {},
        "Web1-L (ms)": {},
        "Web1-T (Kb/s)": {},
        "Web1000-L (ms)": {},
        "Web1000-T (Kb/s)": {},
    }
    for config in TABLE7_CONFIGS:
        builds, boots = [], []
        web1, web1000 = [], []
        for _ in range(max(1, repeats)):
            suite = MacrobenchSuite(config)
            builds.append(suite.apache_build(files=build_files))
            boots.append(suite.boot(services=boot_services))
            web1.append(suite.web(requests=web_requests, clients=1))
            web1000.append(suite.web(requests=web_requests, clients=16))
        rows["Apache Build (s)"][config] = min(builds)
        rows["Boot (s)"][config] = min(boots)
        rows["Web1-L (ms)"][config] = min(latency for latency, _t in web1)
        rows["Web1-T (Kb/s)"][config] = max(throughput for _l, throughput in web1)
        rows["Web1000-L (ms)"][config] = min(latency for latency, _t in web1000)
        rows["Web1000-T (Kb/s)"][config] = max(throughput for _l, throughput in web1000)
    return rows
