"""Syscall trace recording and replay.

Capture a workload's syscall stream once, then re-execute it against
differently configured kernels — the methodology behind Table 7's
apples-to-apples comparisons, exposed as a tool:

    with record_syscalls(kernel) as trace:
        ...  # run the workload
    trace.save("workload.trace.json")

    other = Session(engine="JITTED", rules=rules_text).kernel
    replay(other, Trace.load("workload.trace.json"),
           {1: spawn_root_shell(other)})

Recording wraps ``kernel.sys``; every call is logged as
``(pid, method, args, kwargs)`` with processes referenced by pid.
Replay translates pids through a live mapping (extending it at
``fork``) and can either propagate or tally per-call failures — a
replay against a *stricter* kernel is expected to see denials.
"""

from __future__ import annotations

import base64
import contextlib
import inspect
import json
from typing import Dict, List

from repro import errors
from repro.proc.process import Process

#: Methods whose non-proc positional arguments include a pid needing
#: translation at replay time: method -> index into recorded args.
_PID_ARGS = {"kill": 0}


def _encode_value(value):
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, (frozenset, set)):
        return {"__set__": sorted(value)}
    return value


def _decode_value(value):
    if isinstance(value, dict) and "__bytes__" in value:
        return base64.b64decode(value["__bytes__"])
    if isinstance(value, dict) and "__set__" in value:
        return set(value["__set__"])
    return value


class Trace:
    """A recorded syscall stream, plus the root-process spawn specs.

    ``spawns`` holds one JSON-ready dict per ``kernel.spawn`` call made
    while recording (``pid`` plus the spawn keyword arguments) — enough
    for a replay target, including a worker in another OS process, to
    reconstruct every recorded root process without out-of-band
    ``proc_map`` plumbing (:func:`spawn_recorded`).
    """

    def __init__(self, entries=None, spawns=None):
        #: Entries: (pid, method, args, kwargs, child_pid_or_None)
        self.entries = list(entries or [])
        #: Root-process specs: {"pid": recorded pid, **spawn kwargs}.
        self.spawns = list(spawns or [])

    def append(self, pid, method, args, kwargs, child_pid=None):
        self.entries.append((pid, method, list(args), dict(kwargs), child_pid))

    def append_spawn(self, spec):
        """Record one root-process spawn spec (must carry ``"pid"``)."""
        self.spawns.append(dict(spec))

    def __len__(self):
        return len(self.entries)

    # ---- persistence --------------------------------------------------

    def to_json(self):
        entries = [
            {
                "pid": pid,
                "method": method,
                "args": [_encode_value(a) for a in args],
                "kwargs": {k: _encode_value(v) for k, v in kwargs.items()},
                "child": child,
            }
            for pid, method, args, kwargs, child in self.entries
        ]
        payload = {"version": 2, "spawns": self.spawns, "entries": entries}
        return json.dumps(payload, indent=None, separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        """Parse either format: the v1 bare entry list, or the v2
        ``{"version": 2, "spawns": [...], "entries": [...]}`` object."""
        payload = json.loads(text)
        if isinstance(payload, list):  # v1: entries only
            items, spawns = payload, []
        else:
            items, spawns = payload["entries"], payload.get("spawns", [])
        trace = cls(spawns=spawns)
        for item in items:
            trace.append(
                item["pid"],
                item["method"],
                [_decode_value(a) for a in item["args"]],
                {k: _decode_value(v) for k, v in item["kwargs"].items()},
                child_pid=item.get("child"),
            )
        return trace

    def save(self, path):
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path):
        with open(path) as fh:
            return cls.from_json(fh.read())


class _RecordingSyscalls:
    """Proxy for :class:`repro.syscalls.SyscallAPI` that logs calls."""

    def __init__(self, inner, trace):
        self._inner = inner
        self._trace = trace

    def __getattr__(self, name):
        method = getattr(self._inner, name)
        if not callable(method) or name.startswith("_"):
            return method

        def wrapper(proc, *args, **kwargs):
            if not isinstance(proc, Process):
                return method(proc, *args, **kwargs)
            result = method(proc, *args, **kwargs)
            child_pid = result.pid if name == "fork" and isinstance(result, Process) else None
            self._trace.append(proc.pid, name, args, kwargs, child_pid=child_pid)
            return result

        return wrapper


@contextlib.contextmanager
def record_syscalls(kernel):
    """Context manager: record every ``kernel.sys`` call made inside.

    Only *successful* calls are recorded (a failed call changed
    nothing, so replaying it adds noise, not state).  ``kernel.spawn``
    calls made inside the block are recorded too, as spawn specs on
    ``trace.spawns`` — the replay side reconstructs the same root
    processes with :func:`spawn_recorded`, which is what lets a shard
    of the trace replay inside a freshly built world in another OS
    process.
    """
    trace = Trace()
    original = kernel.sys
    original_spawn = kernel.spawn
    spawn_signature = inspect.signature(original_spawn)

    def recording_spawn(*args, **kwargs):
        proc = original_spawn(*args, **kwargs)
        bound = spawn_signature.bind(*args, **kwargs)
        bound.apply_defaults()
        spec = dict(bound.arguments)
        spec["pid"] = proc.pid
        trace.append_spawn(spec)
        return proc

    kernel.sys = _RecordingSyscalls(original, trace)
    kernel.spawn = recording_spawn
    try:
        yield trace
    finally:
        kernel.sys = original
        kernel.spawn = original_spawn


class ReplayResult:
    """Outcome of a replay run."""

    def __init__(self):
        self.executed = 0
        self.failures = []  # (index, method, errno_name)

    @property
    def failed(self):
        return len(self.failures)


def spawn_recorded(kernel, trace, pids=None):
    """Spawn the trace's recorded root processes into ``kernel``.

    Returns a ``proc_map`` (recorded pid -> live process) ready for
    :func:`replay`.  ``pids`` restricts spawning to a subset of the
    recorded pids — the sharded replay driver passes each worker only
    the roots its shard needs.  Specs are applied in recorded order, so
    pid assignment inside the target world is deterministic.
    """
    proc_map = {}
    for spec in trace.spawns:
        recorded_pid = spec["pid"]
        if pids is not None and recorded_pid not in pids:
            continue
        kwargs = {key: value for key, value in spec.items() if key != "pid"}
        proc_map[recorded_pid] = kernel.spawn(**kwargs)
    return proc_map


def apply_entry(kernel, proc_map, entry):
    """Apply one recorded entry against ``kernel``; never raises.

    The single source of truth for replay semantics: :func:`replay`
    and the parallel replay workers both route every entry through
    here, so a sharded run applies *exactly* the per-entry behavior of
    a serial one.  Returns ``(status, value)`` where status is
    ``"skipped"`` (no live process for the recorded pid, or an
    untranslatable pid argument), ``"ok"``, or the symbolic errno name
    of the kernel denial; ``value`` is the syscall's return value on
    success and the raised exception on failure.  ``proc_map`` is
    extended in place at successful ``fork`` entries.
    """
    pid, method, args, kwargs, child_pid = entry
    proc = proc_map.get(pid)
    if proc is None or not proc.alive:
        return ("skipped", None)
    call_args = list(args)
    pid_index = _PID_ARGS.get(method)
    if pid_index is not None and pid_index < len(call_args):
        target = proc_map.get(call_args[pid_index])
        if target is None:
            return ("skipped", None)
        call_args[pid_index] = target.pid
    try:
        value = getattr(kernel.sys, method)(proc, *call_args, **kwargs)
    except errors.KernelError as exc:
        return (exc.errno_name, exc)
    if method == "fork" and child_pid is not None:
        proc_map[child_pid] = value
    return ("ok", value)


def replay(kernel, trace, proc_map, tolerate_failures=True):
    """Re-execute a trace against ``kernel``.

    Args:
        kernel: the target world (configure its firewall first).
        trace: a :class:`Trace`.
        proc_map: recorded pid -> live :class:`Process` in ``kernel``;
            extended automatically at ``fork`` entries.  Build one from
            the trace's own spawn records with :func:`spawn_recorded`.
        tolerate_failures: collect denials instead of raising — the
            expected mode when replaying against stricter rules.

    Returns a :class:`ReplayResult`.
    """
    result = ReplayResult()
    proc_map = dict(proc_map)
    for index, entry in enumerate(trace.entries):
        status, value = apply_entry(kernel, proc_map, entry)
        if status == "ok":
            result.executed += 1
        elif status != "skipped":
            if not tolerate_failures:
                raise value
            result.failures.append((index, entry[1], status))
    return result
