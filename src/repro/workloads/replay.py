"""Syscall trace recording and replay.

Capture a workload's syscall stream once, then re-execute it against
differently configured kernels — the methodology behind Table 7's
apples-to-apples comparisons, exposed as a tool:

    with record_syscalls(kernel) as trace:
        ...  # run the workload
    trace.save("workload.trace.json")

    other = build_world(); other.attach_firewall(...)
    replay(other, Trace.load("workload.trace.json"),
           {1: spawn_root_shell(other)})

Recording wraps ``kernel.sys``; every call is logged as
``(pid, method, args, kwargs)`` with processes referenced by pid.
Replay translates pids through a live mapping (extending it at
``fork``) and can either propagate or tally per-call failures — a
replay against a *stricter* kernel is expected to see denials.
"""

from __future__ import annotations

import base64
import contextlib
import json
from typing import Dict, List

from repro import errors
from repro.proc.process import Process

#: Methods whose non-proc positional arguments include a pid needing
#: translation at replay time: method -> index into recorded args.
_PID_ARGS = {"kill": 0}


def _encode_value(value):
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, (frozenset, set)):
        return {"__set__": sorted(value)}
    return value


def _decode_value(value):
    if isinstance(value, dict) and "__bytes__" in value:
        return base64.b64decode(value["__bytes__"])
    if isinstance(value, dict) and "__set__" in value:
        return set(value["__set__"])
    return value


class Trace:
    """A recorded syscall stream."""

    def __init__(self, entries=None):
        #: Entries: (pid, method, args, kwargs, child_pid_or_None)
        self.entries = list(entries or [])

    def append(self, pid, method, args, kwargs, child_pid=None):
        self.entries.append((pid, method, list(args), dict(kwargs), child_pid))

    def __len__(self):
        return len(self.entries)

    # ---- persistence --------------------------------------------------

    def to_json(self):
        payload = [
            {
                "pid": pid,
                "method": method,
                "args": [_encode_value(a) for a in args],
                "kwargs": {k: _encode_value(v) for k, v in kwargs.items()},
                "child": child,
            }
            for pid, method, args, kwargs, child in self.entries
        ]
        return json.dumps(payload, indent=None, separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        trace = cls()
        for item in json.loads(text):
            trace.append(
                item["pid"],
                item["method"],
                [_decode_value(a) for a in item["args"]],
                {k: _decode_value(v) for k, v in item["kwargs"].items()},
                child_pid=item.get("child"),
            )
        return trace

    def save(self, path):
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path):
        with open(path) as fh:
            return cls.from_json(fh.read())


class _RecordingSyscalls:
    """Proxy for :class:`repro.syscalls.SyscallAPI` that logs calls."""

    def __init__(self, inner, trace):
        self._inner = inner
        self._trace = trace

    def __getattr__(self, name):
        method = getattr(self._inner, name)
        if not callable(method) or name.startswith("_"):
            return method

        def wrapper(proc, *args, **kwargs):
            if not isinstance(proc, Process):
                return method(proc, *args, **kwargs)
            result = method(proc, *args, **kwargs)
            child_pid = result.pid if name == "fork" and isinstance(result, Process) else None
            self._trace.append(proc.pid, name, args, kwargs, child_pid=child_pid)
            return result

        return wrapper


@contextlib.contextmanager
def record_syscalls(kernel):
    """Context manager: record every ``kernel.sys`` call made inside.

    Only *successful* calls are recorded (a failed call changed
    nothing, so replaying it adds noise, not state).
    """
    trace = Trace()
    original = kernel.sys
    kernel.sys = _RecordingSyscalls(original, trace)
    try:
        yield trace
    finally:
        kernel.sys = original


class ReplayResult:
    """Outcome of a replay run."""

    def __init__(self):
        self.executed = 0
        self.failures = []  # (index, method, errno_name)

    @property
    def failed(self):
        return len(self.failures)


def replay(kernel, trace, proc_map, tolerate_failures=True):
    """Re-execute a trace against ``kernel``.

    Args:
        kernel: the target world (configure its firewall first).
        trace: a :class:`Trace`.
        proc_map: recorded pid -> live :class:`Process` in ``kernel``;
            extended automatically at ``fork`` entries.
        tolerate_failures: collect denials instead of raising — the
            expected mode when replaying against stricter rules.

    Returns a :class:`ReplayResult`.
    """
    result = ReplayResult()
    proc_map = dict(proc_map)
    for index, (pid, method, args, kwargs, child_pid) in enumerate(trace.entries):
        proc = proc_map.get(pid)
        if proc is None or not proc.alive:
            continue
        call_args = list(args)
        pid_index = _PID_ARGS.get(method)
        if pid_index is not None and pid_index < len(call_args):
            target = proc_map.get(call_args[pid_index])
            if target is None:
                continue
            call_args[pid_index] = target.pid
        try:
            value = getattr(kernel.sys, method)(proc, *call_args, **kwargs)
            result.executed += 1
            if method == "fork" and child_pid is not None:
                proc_map[child_pid] = value
        except errors.KernelError as exc:
            if not tolerate_failures:
                raise
            result.failures.append((index, method, exc.errno_name))
    return result
