"""Open-ended session generators for the live mediation service.

The replay path (:mod:`repro.workloads.replay`) exercises the firewall
with *finite recorded traces*; the service (:mod:`repro.service`)
needs the paper's §6.3 server regime instead — an unbounded stream of
user sessions arriving over time.  This module generates those
sessions as **data**: each session is a picklable spec dict (model,
credentials, a list of step tuples) that
:class:`repro.service.core.SessionRunner` executes against a live
kernel.  Specs, not closures, so they ship unchanged across the
``multiprocessing`` spawn boundary and so the *same* stream can be
replayed serially for the differential tests.

Three session models mirror the paper's macrobenchmark programs:

- ``apache`` — a worker serving requests: reads web content and
  per-session files, occasionally opens a ``/tmp`` path a local
  adversary has symlinked at ``/etc/passwd`` (the Figure 4
  ``safe_open`` trap — deterministically **dropped** under
  :func:`repro.rulesets.default.safe_open_pf_rules`);
- ``sshd`` — a login session: authentication reads, then a forked
  shell child that execs, works in the session directory, and exits;
- ``php`` — an interpreter session: script/include reads plus
  state-file appends, with the same tainted-``/tmp`` include trap.

Everything is driven by one seeded :class:`random.Random` —
``generate_stream(count, seed)`` is a pure function of its arguments,
which is what lets the differential suite pin service-mode verdicts to
a serial replay of the identical stream.
"""

from __future__ import annotations

import random

from repro.firewall.engine import ProcessFirewall
from repro.firewall.persist import save_rules
from repro.rulesets.default import RULES_R1_R12, safe_open_pf_rules
from repro.world import ADVERSARY_UID, build_world

#: The session models a stream may mix.
SESSION_MODELS = ("apache", "sshd", "php")

#: Default model mix (weights) when the caller does not supply one:
#: web-heavy, like the paper's Apache macrobenchmarks.
DEFAULT_MIX = {"apache": 3, "sshd": 1, "php": 2}

#: Filesystem root under which each session gets a private subtree.
SERVICE_ROOT = "/srv/svc"


def build_service_world():
    """The standard world plus the service content root.

    Kernel-level audit is disabled (as in the macro-scale world): the
    service measures *mediation*, and the firewall's own audit ring —
    which the differential tests compare — is unaffected.
    """
    kernel = build_world()
    kernel.audit_enabled = False
    kernel.mkdirs(SERVICE_ROOT, label="var_t")
    return kernel


def service_rules_text():
    """The service's default rule base, as ``save_rules`` text.

    The paper's R1–R12 plus the system-wide ``safe_open`` rules —
    serialized through a throwaway firewall so workers and serial
    references restore byte-identical rule bases from one string.
    """
    firewall = ProcessFirewall()
    firewall.install_all(RULES_R1_R12 + safe_open_pf_rules())
    return save_rules(firewall)


def session_home(sid):
    """The per-session private subtree path."""
    return "{}/s{}".format(SERVICE_ROOT, sid)


def trap_path(sid):
    """The adversary-owned ``/tmp`` symlink this session may open."""
    return "/tmp/svc-trap-{}".format(sid)


#: The docroot prefix an apache request stats component-by-component
#: before serving (the server's per-request ``stat`` chain — the
#: homogeneous mediated run :class:`repro.service.core.SessionRunner`'s
#: batched step loop amortizes after the first request).
APACHE_STAT_CHAIN = ("/var/www", "/var/www/html", "/var/www/html/index.html")


def _apache_steps(sid, rng):
    """Request-serving loop: stat chain + content reads + /tmp trap.

    Each request re-stats the docroot prefix (:data:`APACHE_STAT_CHAIN`)
    the way a real httpd walks its docroot per request — identical
    mediated syscalls against identical paths, session after session,
    which is exactly the redundancy the runner's capture-and-replay
    stat cache and the wire codec's template interning both exploit.
    """
    home = session_home(sid)
    steps = [("open_read", "/var/www/html/index.html")]
    for req in range(rng.randint(3, 8)):
        for prefix in APACHE_STAT_CHAIN:
            steps.append(("stat", prefix))
        steps.append(("open_read", "{}/f{}".format(home, rng.randrange(2))))
        if rng.random() < 0.25:
            steps.append(("trap_open", trap_path(sid)))
    steps.append(("getpid",))
    return steps


def _sshd_steps(sid, rng):
    """Login session: auth reads, a forked+exec'd shell, home writes."""
    home = session_home(sid)
    steps = [
        ("open_read", "/etc/passwd"),
        ("fork_exec", "sh", "/bin/sh"),
        ("append", "{}/f0".format(home), "cmd\n"),
    ]
    for _ in range(rng.randint(1, 4)):
        steps.append(("open_read", "{}/f{}".format(home, rng.randrange(2))))
    steps.append(("getpid",))
    return steps


def _php_steps(sid, rng):
    """Interpreter session: include reads, state appends, /tmp trap."""
    home = session_home(sid)
    steps = [("open_read", "/usr/lib/libphp5.so")]
    for _ in range(rng.randint(2, 6)):
        steps.append(("open_read", "{}/f{}".format(home, rng.randrange(2))))
        steps.append(("append", "{}/f1".format(home), "s\n"))
        if rng.random() < 0.3:
            steps.append(("trap_open", trap_path(sid)))
    return steps


_MODEL_STEPS = {
    "apache": _apache_steps,
    "sshd": _sshd_steps,
    "php": _php_steps,
}

_MODEL_PROCESS = {
    "apache": ("apache2", "/usr/bin/apache2", "httpd_t"),
    "sshd": ("sshd", "/usr/sbin/sshd", "sshd_t"),
    "php": ("php5", "/usr/bin/php5", "httpd_t"),
}


def generate_session(sid, model, rng):
    """One picklable session spec for ``model``.

    Keys: ``sid`` (stream-unique id, also the audit logical clock),
    ``model``, ``comm``/``binary``/``label`` (the root process of the
    session), ``nfiles`` (private files the runner creates at admit),
    and ``steps`` — the tuples :class:`repro.service.core.SessionRunner`
    executes.  Pure function of ``(sid, model, rng state)``.
    """
    if model not in _MODEL_STEPS:
        raise ValueError("unknown session model {!r} (expected one of {})".format(
            model, "/".join(SESSION_MODELS)))
    comm, binary, label = _MODEL_PROCESS[model]
    return {
        "sid": sid,
        "model": model,
        "comm": comm,
        "binary": binary,
        "label": label,
        "nfiles": 2,
        "steps": _MODEL_STEPS[model](sid, rng),
    }


def generate_stream(count, seed, mix=None):
    """A deterministic stream of ``count`` session specs.

    ``mix`` maps model name → integer weight (default
    :data:`DEFAULT_MIX`).  One :class:`random.Random` seeded with
    ``seed`` drives both the model choice and each session's step
    generation, so equal ``(count, seed, mix)`` always yields the
    byte-identical stream — the property every differential test and
    the CI service-smoke job lean on.
    """
    rng = random.Random(seed)
    weights = dict(DEFAULT_MIX if mix is None else mix)
    models = sorted(weights)
    population = [m for m in models for _ in range(weights[m])]
    if not population:
        raise ValueError("mix has no positive weights")
    return [generate_session(sid, rng.choice(population), rng) for sid in range(count)]


def poisson_offsets(count, rate, seed):
    """Cumulative Poisson-process arrival offsets (seconds).

    ``count`` exponential inter-arrival gaps at ``rate`` sessions/sec,
    summed to absolute offsets from stream start.  The open-loop
    driver paces admissions against these; the closed-loop driver
    ignores arrival times entirely.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    offsets = []
    now = 0.0
    for _ in range(count):
        now += rng.expovariate(rate)
        offsets.append(now)
    return offsets


def setup_session_fs(kernel, spec):
    """Create the session's private files and its adversary trap.

    Runs at admit time through the kernel's *unmediated* helpers —
    identical on the serial reference and in every worker, so setup
    never perturbs the verdict stream.  The trap is an
    adversary-owned symlink in sticky ``/tmp`` pointing at
    ``/etc/passwd``: opening *through* it violates the ``safe_open``
    owner-match invariant, so a ``trap_open`` step is a deterministic
    DROP under the service rule base.
    """
    sid = spec["sid"]
    home = session_home(sid)
    kernel.mkdirs(home, label="var_t")
    for i in range(spec["nfiles"]):
        kernel.add_file("{}/f{}".format(home, i), b"data-%d" % i, label="var_t")
    kernel.add_symlink(trap_path(sid), "/etc/passwd", uid=ADVERSARY_UID)
