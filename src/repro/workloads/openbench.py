"""Figure 4: the ``open`` variants as a function of path length.

Measures microseconds per call for each program-side defence of
:mod:`repro.programs.libc` at path lengths n ∈ {1, 4, 7}, plus
``safe_open_PF`` (a plain open under the firewall's system-wide
safe-open rules).  The expected shape: ``safe_open`` grows steeply with
n (≥4 extra syscalls per component) while ``safe_open_PF`` stays within
a few percent of the bare ``open``.
"""

from __future__ import annotations

import time

from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.programs.libc import OPEN_VARIANTS
from repro.rulesets.default import safe_open_pf_rules
from repro.world import build_world

#: The paper's path lengths.
FIGURE4_PATH_LENGTHS = (1, 4, 7)


def _build(depth, with_firewall):
    kernel = build_world()
    kernel.audit_enabled = False
    if with_firewall:
        firewall = ProcessFirewall(EngineConfig.optimized())
        kernel.attach_firewall(firewall)
        firewall.install_all(safe_open_pf_rules())
    parts = ["bench"] + ["d{}".format(i) for i in range(depth - 2)] if depth > 1 else []
    path = ""
    for part in parts:
        path += "/" + part
        kernel.mkdirs(path, label="var_t")
    path = (path or "") + "/target-file"
    kernel.add_file(path, b"payload", label="var_t")
    proc = kernel.spawn("bench", uid=0, label="unconfined_t", binary_path="/bin/sh")
    assert len([p for p in path.split("/") if p]) == depth
    return kernel, proc, path


def time_variant(variant, depth, iterations=400):
    """Average µs/call for one variant at one path length."""
    fn = OPEN_VARIANTS[variant]
    kernel, proc, path = _build(depth, with_firewall=(variant == "safe_open_PF"))
    sys = kernel.sys

    def once():
        fd = fn(kernel, proc, path)
        sys.close(proc, fd)

    for _ in range(20):
        once()
    start = time.perf_counter()
    for _ in range(iterations):
        once()
    elapsed = time.perf_counter() - start
    return elapsed / iterations * 1e6


def run_figure4(path_lengths=FIGURE4_PATH_LENGTHS, iterations=400):
    """The full Figure 4 grid: ``{variant: {n: microseconds}}``."""
    results = {name: {} for name in OPEN_VARIANTS}
    for depth in path_lengths:
        for variant in OPEN_VARIANTS:
            results[variant][depth] = time_variant(variant, depth, iterations=iterations)
    return results


def syscall_counts(path_lengths=FIGURE4_PATH_LENGTHS):
    """Syscalls per call for each variant (the *why* behind Figure 4)."""
    out = {name: {} for name in OPEN_VARIANTS}
    for depth in path_lengths:
        for variant, fn in OPEN_VARIANTS.items():
            kernel, proc, path = _build(depth, with_firewall=(variant == "safe_open_PF"))
            before = kernel.stats.total_syscalls
            fd = fn(kernel, proc, path)
            kernel.sys.close(proc, fd)
            out[variant][depth] = kernel.stats.total_syscalls - before - 1  # exclude the close
    return out
