"""Workloads driving the performance evaluation (Tables 6-7, Figures 4-5).

Timing is real wall-clock over the *simulated* syscall path, so
absolute numbers are Python-speed, not kernel-speed; the reproduction
targets are the relative shapes — which configuration costs more, and
how each engine optimization recovers it.
"""

from repro.workloads.lmbench import LMBENCH_OPS, LmbenchSuite, TABLE6_COLUMNS
from repro.workloads.macro import MacrobenchSuite, TABLE7_CONFIGS
from repro.workloads.openbench import run_figure4, syscall_counts, time_variant
from repro.workloads.webbench import apache_requests_per_second, figure5_sweep

__all__ = [
    "LMBENCH_OPS",
    "LmbenchSuite",
    "TABLE6_COLUMNS",
    "MacrobenchSuite",
    "TABLE7_CONFIGS",
    "apache_requests_per_second",
    "figure5_sweep",
    "run_figure4",
    "syscall_counts",
    "time_variant",
]
