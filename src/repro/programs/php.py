"""A PHP-like interpreter with local file inclusion (E4, rule R4).

The interpreter's ``include`` opcode opens whatever pathname the script
computed.  Joomla!-style components concatenate unfiltered request
parameters into that pathname (82 CVEs in 2010 for Joomla! components
alone), so an adversary can make the interpreter load attacker-written
"code".  Rule R4 pins the interpreter's include entrypoint
(``/usr/bin/php5`` + ``0x27ad2c``) to properly-labeled script files.
"""

from __future__ import annotations

from repro.programs.base import Program

#: The include opcode's file-open call site (rule R4's -i operand).
EPT_INCLUDE = 0x27AD2C

PHP_BINARY = "/usr/bin/php5"


class PhpInterpreter(Program):
    """The interpreter, running inside an ``httpd_t`` worker process."""

    BINARY = PHP_BINARY

    def __init__(self, kernel, proc):
        super().__init__(kernel, proc)
        self.included = []  # paths successfully included, in order

    def include(self, path):
        """The ``include``/``require`` opcode: open, read, "execute"."""
        with self.frame(EPT_INCLUDE, "zend_include_or_eval"):
            fd = self.sys.open(self.proc, path)
        source = self.sys.read(self.proc, fd)
        self.sys.close(self.proc, fd)
        self.included.append(path)
        return source

    def run_component(self, component_dir, module, user_input, controller=None, controller_line=17):
        """A vulnerable Joomla!-style component (the gCalendar shape).

        The component builds ``<component_dir>/<module><user_input>.php``
        without filtering ``user_input`` — path traversal plus a null-
        byte-style trailing-extension dodge are both reproduced by
        letting the input terminate the string.

        ``controller`` names the component script whose include line
        issues the request; it is pushed on the interpreter backtrace so
        script-level (``-m SCRIPT``) rules can pin the caller.
        """
        if "\x00" in user_input:
            # PHP's historical null-byte truncation: everything after
            # the byte (including the appended ".php") is dropped.
            raw = component_dir + "/" + module + user_input
            path = raw.split("\x00", 1)[0]
        else:
            path = component_dir + "/" + module + user_input + ".php"
        controller = controller or component_dir + "/controller.php"
        with self.script_frame(controller, controller_line, function="render", language="php"):
            return self.include(path)
