"""Program framework: call-stack discipline for simulated userspace."""

from __future__ import annotations

import contextlib

from repro.proc.interp import InterpreterStack
from repro.proc.stack import BinaryImage


class Program:
    """A simulated program bound to one kernel and one process.

    Subclasses declare entrypoint offsets as class constants and wrap
    resource-requesting code in :meth:`frame` so the process's user
    stack shows the correct call site when the firewall unwinds it.
    """

    #: Path of the program binary; subclasses override.
    BINARY = "/bin/true"

    def __init__(self, kernel, proc):
        self.kernel = kernel
        self.proc = proc
        self.sys = kernel.sys
        if proc.binary is None or proc.binary.path != self.BINARY:
            proc.binary = BinaryImage(self.BINARY)
            proc.images = [proc.binary]

    @contextlib.contextmanager
    def frame(self, offset, function="", image=None):
        """Push a call frame at ``image``+``offset`` for the duration."""
        image = image or self.proc.binary
        self.proc.call(image, offset, function=function)
        try:
            yield
        finally:
            self.proc.ret()

    @contextlib.contextmanager
    def script_frame(self, path, line, function="", language=""):
        """Push an interpreter-level frame (for interpreted programs).

        Creates the process's script stack on first use; the firewall's
        ``SCRIPT_ENTRYPOINT`` context module unwinds it.
        """
        if self.proc.script_stack is None:
            self.proc.script_stack = InterpreterStack(language=language)
        self.proc.script_stack.push(path, line, function=function)
        try:
            yield
        finally:
            self.proc.script_stack.pop()

    def load_library_image(self, path, size=0x1000000):
        """Map a shared object and return its image (deterministic base)."""
        for existing in self.proc.images:
            if existing is not None and existing.path == path:
                return existing
        image = BinaryImage(path, size=size)
        self.proc.map_image(image)
        return image
