"""A bash-like script runner: the init-script tmpfile bug (E9).

The paper's authors found an Ubuntu init script creating a file in
``/tmp`` unsafely (``>`` redirection: ``open(O_CREAT|O_WRONLY)`` with
neither ``O_EXCL`` nor ``O_NOFOLLOW``), which follows a planted symlink
and clobbers — or leaks into — any file the script's (root) identity
can write.  The system-wide ``safe_open`` firewall rules catch it.

Interpreted-program support: the script pushes frames inside the bash
binary image, so the firewall's entrypoint context sees the
interpreter's redirection call site (paper §4.4 adapts interpreter
backtraces with 11-59 lines of code per language).
"""

from __future__ import annotations

from repro.programs.base import Program
from repro.vfs.file import OpenFlags

#: bash's redirection-open call site.
EPT_REDIRECT = 0x21D0
#: bash's command-execution call site (after PATH search).
EPT_PATH_EXEC = 0x2460

BASH_BINARY = "/bin/bash"


class ShellScript(Program):
    """An init-style shell script run by the bash interpreter."""

    BINARY = BASH_BINARY

    def redirect_to(self, path, data=b"started\n"):
        """``echo ... > path`` — the unsafe create (E9's bug)."""
        with self.frame(EPT_REDIRECT, "redir_open"):
            fd = self.sys.open(
                self.proc, path, flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_TRUNC
            )
        self.sys.write(self.proc, fd, data)
        self.sys.close(self.proc, fd)
        return fd

    def run_command(self, name):
        """Execute ``name`` by searching ``$PATH`` (CWE-426's origin).

        Classic sysadmin footgun reproduced: whatever directories the
        environment lists are searched in order, including relative
        entries like ``.``; the first executable match is exec'ed in a
        child.  Returns ``(resolved_path, child_process)``.
        """
        from repro import errors

        search = self.proc.env.get("PATH", "/usr/bin:/bin")
        for entry in search.split(":"):
            base = entry if entry not in ("", ".") else self._cwd_path()
            candidate = "{}/{}".format(base.rstrip("/"), name)
            with self.frame(EPT_PATH_EXEC, "shell_execute"):
                try:
                    self.sys.stat(self.proc, candidate)
                except (errors.ENOENT, errors.ENOTDIR):
                    continue
                child = self.sys.fork(self.proc)
                try:
                    self.sys.execve(child, candidate)
                except errors.KernelError:
                    self.sys.exit(child, 127)
                    raise
            return candidate, child
        raise errors.ENOENT("{}: command not found".format(name))

    def _cwd_path(self):
        """Best-effort textual cwd (relative PATH entries resolve here)."""
        return getattr(self, "cwd_path", "/")

    def source_file(self, path, calling_script="/etc/init.d/rc", calling_line=12):
        """``source path`` — bash reads and "executes" another script.

        The interpreter backtrace records the *calling script's* line
        (the paper ports 59 lines of bash backtrace code into the
        kernel), so ``-m SCRIPT`` rules can pin which script's source
        statement may load what.
        """
        with self.script_frame(calling_script, calling_line, function="source", language="bash"):
            with self.frame(EPT_REDIRECT, "source_open"):
                fd = self.sys.open(self.proc, path)
            body = self.sys.read(self.proc, fd)
            self.sys.close(self.proc, fd)
            return body

    def redirect_to_safely(self, path, data=b"started\n"):
        """The patched form: ``O_EXCL`` refuses a pre-planted entry."""
        with self.frame(EPT_REDIRECT, "redir_open_safe"):
            fd = self.sys.open(
                self.proc,
                path,
                flags=OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_EXCL | OpenFlags.O_NOFOLLOW,
            )
        self.sys.write(self.proc, fd, data)
        self.sys.close(self.proc, fd)
        return fd
