"""Simulated userspace programs.

Each program issues syscalls through the kernel with a realistic call
stack: entering a function pushes a frame whose program counter lies at
a fixed, documented offset inside the program's (or library's) binary
image.  Those offsets are the paper's **entrypoints** — the rule
operands of Table 5 (e.g. ``/lib/ld-2.15.so`` + ``0x596b`` is the
dynamic linker's library-``open`` call site targeted by rule R1).

Programs deliberately reproduce the *vulnerable* logic of their real
counterparts; the firewall, not the program, is what blocks the attack.
"""

from repro.programs.base import Program
from repro.programs.ld_so import DynamicLinker
from repro.programs.libc import (
    open_nofollow,
    open_nolink,
    open_race,
    plain_open,
    safe_open,
)
from repro.programs.apache import ApacheServer
from repro.programs.php import PhpInterpreter
from repro.programs.python_interp import PythonInterpreter
from repro.programs.dbus import DbusDaemon, LibDbusClient
from repro.programs.sshd import Sshd
from repro.programs.java import JavaRuntime
from repro.programs.shell import ShellScript

__all__ = [
    "Program",
    "DynamicLinker",
    "plain_open",
    "open_nofollow",
    "open_nolink",
    "open_race",
    "safe_open",
    "ApacheServer",
    "PhpInterpreter",
    "PythonInterpreter",
    "DbusDaemon",
    "LibDbusClient",
    "Sshd",
    "JavaRuntime",
    "ShellScript",
]
