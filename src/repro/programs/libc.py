"""The ``open`` variants of Figure 4 (program-side link-following defences).

Each variant is the program code of §2.1, with its real syscall cost:

===============  =====================================================
Variant          Defence
===============  =====================================================
plain_open       none (baseline)
open_nofollow    ``O_NOFOLLOW`` on the final component
open_nolink      ``lstat`` then ``open`` (racy: Figure 1a lines 3-6)
open_race        + ``fstat``/``lstat`` identity re-checks (Figure 1a
                 lines 7-14, defeats the basic race and cryogenic sleep)
safe_open        + per-component link checks (Chari et al. [8]): at
                 least 4 extra syscalls per path component
safe_open_PF     plain ``open``; the equivalent checks run as Process
                 Firewall rules (see
                 :func:`repro.rulesets.default.safe_open_pf_rules`)
===============  =====================================================
"""

from __future__ import annotations

from repro import errors
from repro.vfs.file import OpenFlags


class SafetyViolation(errors.KernelError):
    """A program-side resource-access check failed (attack suspected)."""

    errno_name = "ECHECKFAIL"


def plain_open(kernel, proc, path):
    """Baseline: no checks at all."""
    return kernel.sys.open(proc, path)


def open_nofollow(kernel, proc, path):
    """``O_NOFOLLOW``: non-portable, and only guards the last component."""
    return kernel.sys.open(proc, path, flags=OpenFlags.O_RDONLY | OpenFlags.O_NOFOLLOW)


def open_nolink(kernel, proc, path):
    """Figure 1a lines 3-6: lstat check, then open — the racy classic."""
    sys = kernel.sys
    st = sys.lstat(proc, path)
    if st.is_symlink():
        raise SafetyViolation("file is a symbolic link")
    return sys.open(proc, path)


def open_race(kernel, proc, path):
    """Figure 1a in full: lstat / open / fstat / lstat identity checks.

    The re-``lstat`` on line 11 defends Kirch's cryogenic-sleep attack:
    while the fd is held the inode number cannot recycle, so comparing a
    fresh ``lstat`` against ``fstat`` detects a swapped entry.
    """
    sys = kernel.sys
    lbuf = sys.lstat(proc, path)
    if lbuf.is_symlink():
        raise SafetyViolation("file is a symbolic link")
    fd = sys.open(proc, path)
    try:
        buf = sys.fstat(proc, fd)
        if not buf.same_file(lbuf):
            raise SafetyViolation("race detected")
        lbuf2 = sys.lstat(proc, path)
        if not buf.same_file(lbuf2):
            raise SafetyViolation("cryogenic sleep race detected")
    except errors.KernelError:
        sys.close(proc, fd)
        raise
    return fd


def _component_prefixes(path):
    """All directory prefixes plus the full path, e.g.
    ``/a/b/c`` -> ``["/a", "/a/b", "/a/b/c"]``."""
    parts = [p for p in path.split("/") if p]
    prefixes = []
    current = ""
    for part in parts:
        current += "/" + part
        prefixes.append(current)
    return prefixes


def safe_open(kernel, proc, path):
    """Chari et al.'s per-component safe open.

    For every prefix of the path: ``lstat`` it; if it is a symlink,
    require that the link's owner match the link target's owner or be
    the caller (an adversary may redirect *within* their own files but
    not into the victim's).  Each prefix also costs an
    ``open``/``fstat``/``close`` identity probe against the ``lstat``
    snapshot — the ≥4-syscalls-per-component overhead the paper
    measures in Figure 4.
    """
    sys = kernel.sys
    for prefix in _component_prefixes(path):
        lbuf = sys.lstat(proc, prefix)
        if lbuf.is_symlink():
            target = sys.readlink(proc, prefix)
            try:
                tbuf = sys.stat(proc, prefix)  # follows the link
            except errors.ENOENT:
                raise SafetyViolation("dangling symlink at {}".format(prefix))
            if lbuf.st_uid != tbuf.st_uid and lbuf.st_uid != proc.creds.euid:
                raise SafetyViolation(
                    "unsafe link at {}: link owner {} target owner {} ({!r})".format(
                        prefix, lbuf.st_uid, tbuf.st_uid, target
                    )
                )
            continue
        # Identity probe: open the component and confirm it is the
        # object lstat saw (detects mid-walk swaps).
        fd = sys.open(proc, prefix)
        try:
            fbuf = sys.fstat(proc, fd)
            if not fbuf.same_file(lbuf):
                raise SafetyViolation("component {} changed during walk".format(prefix))
        finally:
            sys.close(proc, fd)
    fd = sys.open(proc, path)
    try:
        final = sys.fstat(proc, fd)
        # A permitted terminal symlink was validated above, so compare
        # against the followed object.
        expect = sys.stat(proc, path)
        if not final.same_file(expect):
            raise SafetyViolation("final component changed during walk")
    except errors.KernelError:
        sys.close(proc, fd)
        raise
    return fd


def safe_open_pf(kernel, proc, path):
    """The Process Firewall equivalent: one plain open.

    All safety comes from installed rules mediating every component of
    the walk (``LNK_FILE_READ`` ownership compares), so the program pays
    a single syscall.
    """
    return kernel.sys.open(proc, path)


#: Figure 4's series, in presentation order.
OPEN_VARIANTS = {
    "open": plain_open,
    "open_nfflag": open_nofollow,
    "open_nolink": open_nolink,
    "open_race": open_race,
    "safe_open": safe_open,
    "safe_open_PF": safe_open_pf,
}
