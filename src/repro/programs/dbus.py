"""D-Bus: the daemon's bind/chmod TOCTTOU (E6) and libdbus's
environment-trusting client (E3).

- **Daemon (E6, rules R5/R6)**: ``dbus-daemon`` binds its system socket
  and then ``chmod``\\ s it in a *separate* syscall.  An adversary who
  can swap the pathname between the two gets the mode change applied to
  a file of their choosing.  Rule R5 records the bound inode in the
  process's ``STATE``; rule R6 drops the ``chmod`` when the inode
  changed.
- **Client (E3, rule R3)**: ``libdbus`` reads the bus address from
  ``DBUS_SYSTEM_BUS_ADDRESS`` without considering that it may run inside
  a setuid binary whose caller controls the environment.  Rule R3 pins
  the library's connect entrypoint to the trusted socket label.
"""

from __future__ import annotations

from repro.programs.base import Program

#: dbus-daemon's bind call site (rule R5).
EPT_BIND = 0x3C750
#: dbus-daemon's chmod-the-socket call site (rule R6).
EPT_CHMOD = 0x3C786
#: libdbus's connect call site (rule R3).
EPT_CONNECT = 0x39231

DBUS_DAEMON_BINARY = "/bin/dbus-daemon"
LIBDBUS_PATH = "/lib/libdbus-1.so.3"
SYSTEM_SOCKET = "/var/run/dbus/system_bus_socket"


class DbusDaemon(Program):
    """The system bus daemon (runs as ``system_dbusd_t``)."""

    BINARY = DBUS_DAEMON_BINARY

    def __init__(self, kernel, proc, socket_path=SYSTEM_SOCKET):
        super().__init__(kernel, proc)
        self.socket_path = socket_path

    def bind_socket(self, label="system_dbusd_var_run_t"):
        """Phase 1: create and bind the listening socket."""
        with self.frame(EPT_BIND, "socket_bind"):
            return self.sys.bind(self.proc, self.socket_path, mode=0o700, label=label)

    def chmod_socket(self, mode=0o666):
        """Phase 2: open the socket up to clients — the racy half."""
        with self.frame(EPT_CHMOD, "socket_chmod"):
            return self.sys.chmod(self.proc, self.socket_path, mode)

    def setup(self):
        """Both phases back-to-back (no adversary window in-between)."""
        inode = self.bind_socket()
        self.chmod_socket()
        return inode


class LibDbusClient(Program):
    """A program using ``libdbus`` to reach the system bus.

    ``self.proc`` may be a setuid process; the library does not care —
    which is the bug.
    """

    BINARY = "/bin/sh"  # the hosting program; libdbus is a mapped image

    def __init__(self, kernel, proc):
        super().__init__(kernel, proc)
        self.lib_image = self.load_library_image(LIBDBUS_PATH)

    def bus_address(self):
        """E3: the environment wins, with no setuid scrubbing."""
        return self.proc.env.get("DBUS_SYSTEM_BUS_ADDRESS", SYSTEM_SOCKET)

    def connect(self):
        """Connect to the (claimed) system bus; returns the listener pid."""
        address = self.bus_address()
        with self.frame(EPT_CONNECT, "_dbus_connect", image=self.lib_image):
            return self.sys.connect(self.proc, address)
