"""The Java runtime's untrusted configuration search path (E7, rule R7).

The paper reports an unpatched (known ≥2 years) vulnerability: ``java``
consults configuration files found relative to the working directory
before the trusted system location, so a process launched in an
adversary-writable directory loads adversary configuration.  Rule R7
drops opens from the config entrypoint on any non-``SYSHIGH`` object.
"""

from __future__ import annotations

from repro import errors
from repro.programs.base import Program

#: The configuration-open call site (rule R7's -i operand).
EPT_LOAD_CONFIG = 0x5D7E

JAVA_BINARY = "/usr/bin/java"

#: Trusted configuration directory searched last — the bug's shape.
SYSTEM_CONFIG_DIR = "/etc/java"


class JavaRuntime(Program):
    """The ``java`` launcher."""

    BINARY = JAVA_BINARY

    def __init__(self, kernel, proc, cwd_path="/"):
        super().__init__(kernel, proc)
        self.cwd_path = cwd_path.rstrip("/") or "/"

    def load_config(self, name="jvm.cfg"):
        """Search cwd first, then the system directory.

        Returns ``(path, contents)``.
        """
        candidates = [
            "{}/{}".format(self.cwd_path.rstrip("/") or "", name),
            "{}/{}".format(SYSTEM_CONFIG_DIR, name),
        ]
        for candidate in candidates:
            with self.frame(EPT_LOAD_CONFIG, "readConfig"):
                try:
                    fd = self.sys.open(self.proc, candidate)
                except (errors.ENOENT, errors.ENOTDIR):
                    continue
            data = self.sys.read(self.proc, fd)
            self.sys.close(self.proc, fd)
            return candidate, data
        raise errors.ENOENT("no {} found".format(name))
