"""A Python-like interpreter with an untrusted module search path (E2).

``dstat`` (CVE-2009-4081) imported plugins with a ``sys.path`` that
included the working directory, so an adversary who controls the cwd
plants a Trojan module.  The interpreter itself has shipped the same
bug (CVE-2008-5983).  Rule R2 pins the interpreter's import entrypoint
(``/usr/bin/python2.7`` + ``0x34f05``) to trusted module labels.
"""

from __future__ import annotations

from repro import errors
from repro.programs.base import Program

#: The import machinery's file-open call site (rule R2's -i operand).
EPT_IMPORT = 0x34F05

PYTHON_BINARY = "/usr/bin/python2.7"

#: Trusted default module directories.
DEFAULT_SYS_PATH = ("/usr/lib", "/usr/share")


class PythonInterpreter(Program):
    """The interpreter process."""

    BINARY = PYTHON_BINARY

    def __init__(self, kernel, proc, cwd_path="/", sys_path=None):
        super().__init__(kernel, proc)
        self.cwd_path = cwd_path.rstrip("/") or "/"
        #: ``""`` denotes the working directory — the vulnerable entry.
        self.sys_path = list(sys_path) if sys_path is not None else ["", *DEFAULT_SYS_PATH]

    def import_module(self, name):
        """Walk ``sys_path``; first hit wins (the Trojan-module channel).

        Returns ``(module_path, source)``.
        """
        for entry in self.sys_path:
            base = self.cwd_path if entry == "" else entry
            candidate = "{}/{}.py".format(base.rstrip("/") or "", name)
            with self.frame(EPT_IMPORT, "import_module"):
                try:
                    fd = self.sys.open(self.proc, candidate)
                except (errors.ENOENT, errors.ENOTDIR):
                    continue
            source = self.sys.read(self.proc, fd)
            self.sys.close(self.proc, fd)
            return candidate, source
        raise errors.ENOENT("module {!r} not found".format(name))
