"""An Apache-like web server.

Models the two behaviours the paper builds its narrative on:

- **two distinct resource contexts in one process** — the call site
  serving user content must never reach the password file, while the
  authentication call site must (Introduction's motivating example);
- **SymLinksIfOwnerMatch** — the per-component program check whose cost
  and racy-ness Figure 5 measures, versus the equivalent firewall rule
  R8 at entrypoint ``0x2d637``.

Deliberately vulnerable: URL-to-path mapping does not canonicalize
``..`` unless input filtering is enabled (Directory Traversal,
CWE-22).
"""

from __future__ import annotations

from repro import errors
from repro.programs.base import Program

#: Entrypoint of the content-serving open (rule R8's -i operand).
EPT_SERVE_OPEN = 0x2D637
#: Entrypoint of the password-file open used for authentication.
EPT_AUTH_OPEN = 0x31AF0

APACHE_BINARY = "/usr/bin/apache2"


class HttpResponse:
    """Minimal response record returned by :meth:`ApacheServer.serve`."""

    __slots__ = ("status", "body", "path")

    def __init__(self, status, body=b"", path=None):
        self.status = status
        self.body = body
        self.path = path

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<HttpResponse {} {}>".format(self.status, self.path)


class ApacheServer(Program):
    """The web server program."""

    BINARY = APACHE_BINARY

    def __init__(self, kernel, proc, document_root="/var/www/html",
                 symlinks_if_owner_match=False, filter_traversal=False,
                 allow_htaccess=False):
        super().__init__(kernel, proc)
        self.document_root = document_root.rstrip("/")
        #: When True, the *program* performs the per-component owner
        #: checks (Figure 5's "Program" series).  When False the server
        #: relies on firewall rule R8 (or nothing).
        self.symlinks_if_owner_match = symlinks_if_owner_match
        #: When True, reject URLs containing "..".
        self.filter_traversal = filter_traversal
        #: AllowOverride: consult user-writable ``.htaccess`` files
        #: during serving.  This is the configuration dimension §6.3.1
        #: uses to show that test-suite traces over-generalize: with it
        #: on, the serving entrypoint legitimately reads low-integrity
        #: files, so no tight rule can be generated for it.
        self.allow_htaccess = allow_htaccess

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    def url_to_path(self, url):
        """Naive concatenation — the traversal attack surface."""
        if not url.startswith("/"):
            url = "/" + url
        return self.document_root + url

    def serve(self, url):
        """Serve a static file; returns an :class:`HttpResponse`."""
        if self.filter_traversal and ".." in url:
            return HttpResponse(400, b"Bad Request", path=url)
        path = self.url_to_path(url)
        try:
            if self.allow_htaccess:
                self._read_htaccess(path)
            if self.symlinks_if_owner_match:
                self._check_symlinks_owner_match(path)
            with self.frame(EPT_SERVE_OPEN, "default_handler"):
                fd = self.sys.open(self.proc, path)
            body = self.sys.read(self.proc, fd)
            self.sys.close(self.proc, fd)
            return HttpResponse(200, body, path=path)
        except errors.ENOENT:
            return HttpResponse(404, b"Not Found", path=path)
        except errors.EISDIR:
            return HttpResponse(403, b"Forbidden", path=path)
        except errors.EACCES:
            return HttpResponse(403, b"Forbidden", path=path)

    def _check_symlinks_owner_match(self, path):
        """The program-side SymLinksIfOwnerMatch walk.

        One ``lstat`` per component, plus a following ``stat`` when the
        component is a link — and, as the Apache documentation warns,
        the result "can be circumvented through races": nothing pins the
        namespace between these checks and the later ``open``.
        """
        parts = [p for p in path.split("/") if p]
        prefix = ""
        for part in parts:
            prefix += "/" + part
            with self.frame(EPT_SERVE_OPEN, "symlink_owner_check"):
                lbuf = self.sys.lstat(self.proc, prefix)
                if lbuf.is_symlink():
                    tbuf = self.sys.stat(self.proc, prefix)
                    if lbuf.st_uid != tbuf.st_uid:
                        raise errors.EACCES("SymLinksIfOwnerMatch: owner mismatch at {}".format(prefix))

    def _read_htaccess(self, path):
        """AllowOverride processing: read the directory's .htaccess.

        Runs from the same serving entrypoint as content opens — which
        is exactly what poisons entrypoint classification when enabled.
        """
        directory = path.rsplit("/", 1)[0] or "/"
        candidate = directory + "/.htaccess"
        with self.frame(EPT_SERVE_OPEN, "read_htaccess"):
            try:
                fd = self.sys.open(self.proc, candidate)
            except errors.KernelError:
                return None
        overrides = self.sys.read(self.proc, fd)
        self.sys.close(self.proc, fd)
        return overrides

    # ------------------------------------------------------------------
    # authentication (the other resource context)
    # ------------------------------------------------------------------

    def authenticate(self, user, password, shadow_path="/etc/shadow"):
        """Check credentials against the system password file.

        This call site is *expected* to read high-secrecy data; the same
        read from :meth:`serve`'s entrypoint would be an attack.
        """
        with self.frame(EPT_AUTH_OPEN, "check_password"):
            fd = self.sys.open(self.proc, shadow_path)
        data = self.sys.read(self.proc, fd)
        self.sys.close(self.proc, fd)
        return user.encode() in data or password.encode() in data
