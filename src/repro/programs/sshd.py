"""OpenSSH's non-reentrant signal handler race (E5, CVE-2006-5051).

``sshd``'s ``grace_alarm_handler`` called cleanup functions that are not
async-signal-safe.  If a second handled signal arrives while the first
handler is still running, the non-reentrant state is corrupted (in the
real CVE: a double ``free`` reachable pre-auth).  Rules R9-R12 close the
window system-wide: delivery of a *handled, blockable* signal is dropped
while the process's ``STATE`` says a handler is already running.
"""

from __future__ import annotations

from repro.proc import signals as sig
from repro.programs.base import Program

#: The grace-alarm handler's address in the sshd binary.
EPT_ALARM_HANDLER = 0x8810
#: A second handled signal (connection teardown path).
EPT_TERM_HANDLER = 0x8960

SSHD_BINARY = "/usr/sbin/sshd"


class Sshd(Program):
    """The ssh daemon with its historical handler layout."""

    BINARY = SSHD_BINARY

    def __init__(self, kernel, proc):
        super().__init__(kernel, proc)
        #: Set when a handler observed the non-reentrant state already
        #: claimed — the "exploited" marker for tests.
        self.corrupted = False
        self.handler_entries = 0

    def install_handlers(self):
        """Install SIGALRM/SIGTERM handlers *without* auto-return.

        The handler body is executed by scenario code between the
        delivery and an explicit ``sigreturn`` — which is what opens
        the race window.
        """
        self.sys.sigaction(self.proc, sig.SIGALRM, handler_pc=EPT_ALARM_HANDLER)
        self.sys.sigaction(self.proc, sig.SIGTERM, handler_pc=EPT_TERM_HANDLER)

    def note_handler_entry(self):
        """Called by scenarios when a handler starts running."""
        self.handler_entries += 1
        if self.proc.signals.handler_depth > 1:
            # A second handler is running inside the first: the
            # non-reentrant cleanup state is now corrupted.
            self.corrupted = True

    def finish_handler(self):
        self.sys.sigreturn(self.proc)
