"""The dynamic linker (``ld.so``), Figure 1(b) of the paper.

Reproduces the real loader's behaviour — including the parts that make
untrusted-search-path attacks possible:

- ``LD_LIBRARY_PATH``/``LD_PRELOAD`` are honoured for ordinary binaries
  and **unset only for setuid binaries** (Figure 1b lines 1-5), so any
  other channel (RUNPATH baked into the binary, loader bugs, insecure
  environment set by a launcher like Icecat's) still reaches the search
  path;
- the binary's ``RUNPATH`` is trusted verbatim (CVE-2006-1564: a Debian
  installer bug shipped Apache modules with ``RUNPATH=/tmp/...``);
- the first matching library wins.

The library-``open`` call site is entrypoint ``0x596b`` in
``/lib/ld-2.15.so`` — the operand of rule R1.
"""

from __future__ import annotations

from repro import errors
from repro.programs.base import Program

#: The paper's entrypoint for ld.so's library open (rule R1).
EPT_OPEN_LIBRARY = 0x596B

#: Default trusted search directories (from /etc/ld.so.conf).
DEFAULT_LIBRARY_PATH = ("/lib", "/usr/lib")

LD_SO_PATH = "/lib/ld-2.15.so"


class DynamicLinker(Program):
    """``ld.so`` running inside a victim process."""

    BINARY = LD_SO_PATH

    def __init__(self, kernel, proc, runpath=()):
        # ld.so is an *image mapped into* the victim, not its main
        # binary: keep proc.binary untouched and map ld.so alongside.
        self.kernel = kernel
        self.proc = proc
        self.sys = kernel.sys
        self.image = self.load_library_image(LD_SO_PATH)
        #: RUNPATH entries baked into the program binary at link time.
        self.runpath = tuple(runpath)

    def build_search_path(self):
        """Figure 1b line 6: assemble the library search path."""
        env = self.proc.env
        path = []
        if self.proc.creds.is_setuid:
            # Lines 1-5: a setuid process scrubs the dangerous vars.
            env.pop("LD_LIBRARY_PATH", None)
            env.pop("LD_PRELOAD", None)
        ld_path = env.get("LD_LIBRARY_PATH", "")
        path.extend(p for p in ld_path.split(":") if p)
        # RUNPATH is applied after LD_LIBRARY_PATH, before defaults —
        # and is *not* scrubbed: the binary is trusted to know its own
        # paths, which is exactly the E1 attack channel.
        path.extend(self.runpath)
        path.extend(DEFAULT_LIBRARY_PATH)
        return path

    def load_library(self, name):
        """Figure 1b lines 7-11: walk the path; first hit is mapped.

        Returns ``(library_path, image)``.

        Raises:
            ENOENT: no candidate directory contained the library.
            PFDenied/EACCES: a candidate open was denied (propagated —
                the loader fails closed rather than trying the next
                directory with a *different* library, matching ld.so's
                behaviour of aborting on a load error).
        """
        preload = self.proc.env.get("LD_PRELOAD")
        candidates = []
        if preload and not self.proc.creds.is_setuid:
            candidates.append(preload)
        candidates.extend("{}/{}".format(d, name) for d in self.build_search_path())
        for candidate in candidates:
            with self.frame(EPT_OPEN_LIBRARY, "open_library", image=self.image):
                try:
                    fd = self.sys.open(self.proc, candidate)
                except errors.ENOENT:
                    continue
                except errors.ENOTDIR:
                    continue
                image = self.sys.mmap(self.proc, fd, as_image=True)
                self.sys.close(self.proc, fd)
                return candidate, image
        raise errors.ENOENT("library {!r} not found on search path".format(name))
