#!/usr/bin/env python
"""pydocstyle-lite: docstring-presence check for the public surface.

Walks the modules listed in ``CHECKED_MODULES`` and fails (exit 1)
when any public symbol — module, public class, public
function/method, or public property — lacks a docstring.  "Public"
means not underscore-prefixed; private helpers and dunders other than
the module/class themselves are exempt, as are symbols re-exported
from another module (their docstring lives at the definition site).

Run from the repository root::

    PYTHONPATH=src python tools/check_docstrings.py

Wired into CI next to the tier-1 suite, and into the test suite as
``tests/obs/test_docstrings.py`` so a missing docstring fails locally
before it fails in CI.
"""

from __future__ import annotations

import importlib
import inspect
import sys

#: Modules whose public surface must be fully documented: the
#: observability layer plus the engine that hosts it.
CHECKED_MODULES = [
    "repro.obs",
    "repro.obs.audit",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.firewall.engine",
    "repro.firewall.codegen",
    "repro.firewall.tables",
    "repro.firewall.rescache",
    "repro.firewall.procstate",
    "repro.workloads.forkscale",
    "repro.parallel",
    "repro.parallel.shard",
    "repro.parallel.worker",
    "repro.parallel.merge",
    "repro.parallel.driver",
    "repro.parallel.batch",
    "repro.api",
    "repro.deprecation",
    "repro.obs.service",
    "repro.service",
    "repro.service.core",
    "repro.service.pool",
    "repro.service.driver",
    "repro.service.wire",
    "repro.workloads.generators",
    "repro.vfs.dcache",
]


def _is_local(obj, module):
    """Symbols defined elsewhere are checked at their home module."""
    defined_in = getattr(obj, "__module__", None)
    return defined_in is None or defined_in == module.__name__


def _missing_for_class(cls, module):
    missing = []
    if not inspect.getdoc(cls):
        missing.append("{}.{}".format(module.__name__, cls.__name__))
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        qualified = "{}.{}.{}".format(module.__name__, cls.__name__, name)
        if isinstance(member, property):
            if not inspect.getdoc(member.fget):
                missing.append(qualified)
        elif inspect.isfunction(member) or isinstance(member, (classmethod, staticmethod)):
            fn = member.__func__ if isinstance(member, (classmethod, staticmethod)) else member
            if not inspect.getdoc(fn):
                missing.append(qualified)
    return missing


def missing_docstrings(module_names=CHECKED_MODULES):
    """Return the fully-qualified public symbols lacking docstrings."""
    missing = []
    for module_name in module_names:
        module = importlib.import_module(module_name)
        if not inspect.getdoc(module):
            missing.append(module_name)
        for name, member in vars(module).items():
            if name.startswith("_") or not _is_local(member, module):
                continue
            if inspect.isclass(member):
                missing.extend(_missing_for_class(member, module))
            elif inspect.isfunction(member):
                if not inspect.getdoc(member):
                    missing.append("{}.{}".format(module_name, name))
    return missing


def main():
    """CLI entry point: print offenders, exit 1 when any exist."""
    missing = missing_docstrings()
    if missing:
        print("public symbols missing docstrings:")
        for name in missing:
            print("  " + name)
        return 1
    print("docstring check: {} modules clean".format(len(CHECKED_MODULES)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
