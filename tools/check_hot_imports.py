#!/usr/bin/env python
"""Hot-path import lint: no function-body imports in hot modules.

A ``from x import y`` inside a function runs the import machinery's
lock + sys.modules probe on *every call* — measurable on mediation
paths that run millions of times (this is how ``dac_check`` cost a
dict probe per DAC-checked mediation before the dcache PR hoisted
it).  This tool AST-walks the modules listed in ``HOT_MODULES`` and
fails (exit 1) on any ``import``/``from-import`` statement nested
inside a function or method body.

Deliberately lazy imports (circular-import breaks, optional heavy
deps) are exempted by a pragma on the import line::

    from repro.firewall.pftables import pftables  # hot-import: ok

Run from the repository root::

    PYTHONPATH=src python tools/check_hot_imports.py

Wired into CI next to the docstring check, and into the test suite as
``tests/test_hot_imports.py`` so a regression fails locally before it
fails in CI.
"""

from __future__ import annotations

import ast
import os
import sys

#: Modules on the mediation hot path: every syscall runs through these,
#: so a per-call import is a per-mediation tax.
HOT_MODULES = [
    "repro/kernel.py",
    "repro/syscalls/api.py",
    "repro/vfs/namei.py",
    "repro/vfs/filesystem.py",
    "repro/vfs/dcache.py",
    "repro/vfs/inode.py",
    "repro/vfs/file.py",
    "repro/firewall/rescache.py",
    "repro/firewall/engine.py",
    "repro/firewall/procstate.py",
    "repro/security/dac.py",
    "repro/security/lsm.py",
    "repro/security/selinux.py",
]

#: Pragma marking an import as deliberately lazy.
PRAGMA = "hot-import: ok"


def _function_body_imports(source, filename):
    """Yield ``(lineno, text)`` for each import nested in a function."""
    tree = ast.parse(source, filename=filename)
    lines = source.splitlines()
    offenders = []

    class Visitor(ast.NodeVisitor):
        def __init__(self):
            self.depth = 0

        def _visit_func(self, node):
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        visit_FunctionDef = _visit_func
        visit_AsyncFunctionDef = _visit_func

        def _visit_import(self, node):
            if self.depth > 0:
                text = lines[node.lineno - 1]
                if PRAGMA not in text:
                    offenders.append((node.lineno, text.strip()))
            self.generic_visit(node)

        visit_Import = _visit_import
        visit_ImportFrom = _visit_import

    Visitor().visit(tree)
    return offenders


def main(src_root=None):
    """Check every hot module; return a process exit status."""
    root = src_root or os.path.join(os.path.dirname(__file__), os.pardir, "src")
    root = os.path.abspath(root)
    failures = 0
    for rel in HOT_MODULES:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            print("check_hot_imports: missing module {}".format(rel))
            failures += 1
            continue
        with open(path) as fh:
            source = fh.read()
        for lineno, text in _function_body_imports(source, rel):
            print("{}:{}: function-body import on a hot path: {}".format(
                rel, lineno, text))
            failures += 1
    if failures:
        print("check_hot_imports: {} offender(s); hoist to module top or "
              "mark '# {}'".format(failures, PRAGMA))
        return 1
    print("check_hot_imports: {} hot modules clean".format(len(HOT_MODULES)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
