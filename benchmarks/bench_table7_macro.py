"""Table 7: macrobenchmarks under Without PF / PF Base / PF Full.

Shape expectations from the paper: PF Base costs ≈ nothing; PF Full
stays a small single-digit-percent overhead on times/latency (our
Python engine is allowed a bit more headroom), and throughput moves the
opposite way.
"""

import pytest

from repro.analysis.tables import format_table, overhead_pct
from repro.workloads.macro import MacrobenchSuite, TABLE7_CONFIGS, run_table7


@pytest.mark.parametrize("config", TABLE7_CONFIGS)
def test_apache_build_per_config(benchmark, config):
    suite = MacrobenchSuite(config)
    benchmark.pedantic(suite.apache_build, kwargs={"files": 30}, iterations=1, rounds=3)


def test_table7_grid(run_once, emit):
    rows_data = run_once(run_table7, build_files=60, boot_services=24, web_requests=300)
    lower_is_better = {"Apache Build (s)", "Boot (s)", "Web1-L (ms)", "Web1000-L (ms)"}
    rows = []
    for name, values in rows_data.items():
        base = values["Without PF"]
        rows.append(
            (
                name,
                base,
                "{:.4f} ({:+.1f}%)".format(values["PF Base"], overhead_pct(base, values["PF Base"])),
                "{:.4f} ({:+.1f}%)".format(values["PF Full"], overhead_pct(base, values["PF Full"])),
            )
        )
    emit(
        format_table(
            ["Benchmark", "Without PF", "PF Base", "PF Full"],
            rows,
            title="Table 7: macrobenchmark overheads",
        )
    )

    for name, values in rows_data.items():
        base, full = values["Without PF"], values["PF Full"]
        if name in lower_is_better:
            assert full >= base * 0.9, "{}: PF Full implausibly faster".format(name)
        else:
            assert full <= base * 1.1, "{}: PF Full implausibly higher throughput".format(name)
    # The headline: PF Full overhead on build time is bounded (paper:
    # 4%; our engine pays interpreted-Python costs per mediation against
    # a baseline syscall that is itself only a few microseconds of
    # Python, so the envelope is generous — the claim is "same order of
    # magnitude", not the paper's single digits).
    build = rows_data["Apache Build (s)"]
    assert overhead_pct(build["Without PF"], build["PF Full"]) < 250.0
    assert overhead_pct(build["Without PF"], build["PF Base"]) < 60.0
