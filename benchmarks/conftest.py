"""Benchmark harness helpers.

Every benchmark regenerates one table or figure of the paper.  Besides
pytest-benchmark's timing output, each bench *prints* the regenerated
rows (run with ``-s`` to see them inline) and appends them to
``benchmarks/results.txt`` so a full run leaves a complete artifact.
"""

import os
import random

import pytest

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")

#: One seed for every benchmark's RNG use: shard assignment, randomized
#: rule bases, and workload synthesis must be reproducible run-to-run
#: (``bench_macro_scale.py::test_shard_manifest_reproducible`` pins
#: that two back-to-back runs produce identical shard manifests).
RNG_SEED = 0x5F1ED


def pin_seeds():
    """(Re)seed every RNG a benchmark might consume."""
    random.seed(RNG_SEED)


@pytest.fixture(autouse=True)
def _pinned_rng():
    """Pin the global RNG before every benchmark test."""
    pin_seeds()
    yield


@pytest.fixture
def reseed():
    """Callable that re-pins the RNGs mid-test (for back-to-back
    reproducibility runs inside one test body)."""
    return pin_seeds


def _append_results(text):
    with open(RESULTS_PATH, "a") as fh:
        fh.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    if os.path.exists(RESULTS_PATH):
        os.remove(RESULTS_PATH)
    yield


@pytest.fixture
def emit():
    """Print a rendered table and persist it to the results artifact."""

    def _emit(text):
        print()
        print(text)
        _append_results(text)

    return _emit


@pytest.fixture
def run_once(benchmark):
    """Run an expensive table-producing function exactly once under
    pytest-benchmark (no auto-calibration re-runs)."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return _run
