"""Benchmark harness helpers.

Every benchmark regenerates one table or figure of the paper.  Besides
pytest-benchmark's timing output, each bench *prints* the regenerated
rows (run with ``-s`` to see them inline) and appends them to
``benchmarks/results.txt`` so a full run leaves a complete artifact.
"""

import os

import pytest

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


def _append_results(text):
    with open(RESULTS_PATH, "a") as fh:
        fh.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    if os.path.exists(RESULTS_PATH):
        os.remove(RESULTS_PATH)
    yield


@pytest.fixture
def emit():
    """Print a rendered table and persist it to the results artifact."""

    def _emit(text):
        print()
        print(text)
        _append_results(text)

    return _emit


@pytest.fixture
def run_once(benchmark):
    """Run an expensive table-producing function exactly once under
    pytest-benchmark (no auto-calibration re-runs)."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return _run
