"""Beyond the paper: sharded multi-worker macro-replay scaling.

Table 7 measures firewall overhead under serial macro workloads; this
bench measures how replay throughput scales when the recorded trace is
sharded by fork lineage across N OS worker processes
(:mod:`repro.parallel`), plus the per-record win of the batched
mediation fast path (``engine.mediate_batch``).

Writes ``benchmarks/BENCH_macro_scale.json`` when run at full budget.
**Scaling basis**: per-worker CPU time (``time.process_time`` around
the replay loop only — world build, rule restore, and interpreter
spawn are excluded as ``setup_s``).  Aggregate throughput is
``sum(shard_records / worker_cpu_seconds)``; on a many-core host the
wall-clock curve tracks this CPU-time curve, while on a core-starved
host (CI containers, this repo's reference machine reports 1 usable
core) wall clock cannot exceed 1x by construction, so the artifact
records both bases and labels every figure.  Environment knobs:
``PF_SCALE_SESSIONS`` / ``PF_SCALE_LOOPS`` / ``PF_SCALE_REPEATS`` /
``PF_SCALE_WORKERS`` (comma list).
"""

import json
import os
import platform
import statistics
import time

from repro.analysis.tables import format_table
from repro.api import Session
from repro.firewall.persist import save_rules
from repro.parallel import replay_serial, replay_sharded
from repro.parallel.batch import record_mediations, replay_mediations, reset_mediation_state
from repro.parallel.shard import plan_shards
from repro.rulesets.generated import generate_full_rulebase, install_full_rulebase
from repro.workloads.macro import record_scale_trace
from repro.world import spawn_root_shell

SCALE_JSON = os.path.join(os.path.dirname(__file__), "BENCH_macro_scale.json")

#: Full-budget gate: below this loop count the grid still runs (CI
#: smoke) but must not clobber the committed steady-state artifact.
FULL_BUDGET_LOOPS = 30


def _sessions(default=8):
    return int(os.environ.get("PF_SCALE_SESSIONS", default))


def _loops(default=40):
    return int(os.environ.get("PF_SCALE_LOOPS", default))


def _repeats(default=3):
    return int(os.environ.get("PF_SCALE_REPEATS", default))


def _worker_grid(default="1,2,4,8"):
    return [int(n) for n in os.environ.get("PF_SCALE_WORKERS", default).split(",")]


def _usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _rules_text():
    return save_rules(Session(engine="JITTED", rules=install_full_rulebase).firewall)


def _mean_stdev(values):
    mean = statistics.mean(values)
    stdev = statistics.stdev(values) if len(values) >= 2 else 0.0
    return round(mean, 1), round(stdev, 1)


def _measure_batch_ratio(records=2000, repeats=5):
    """Per-record time of ``mediate_batch`` vs the per-call loop.

    Measures two batch shapes against the same JITTED firewall:

    - *homogeneous* — one captured ``FILE_GETATTR`` record repeated
      ``records`` times: a maximal run of identical (op, entrypoint,
      subject) records, the shape the acceptance gate (<= 0.9x) is
      defined over;
    - *stream* — the raw mediation stream of a repeated ``stat``
      workload (op kinds interleave per syscall, so runs are short):
      the realistic shape, reported for context.

    Returns ``{"homogeneous": (percall_us, batched_us, ratio),
    "stream": (...)}`` using the best of ``repeats`` passes per mode,
    with firewall state reset before every pass so both modes start
    from cold per-process caches; verdicts are asserted equal between
    modes before any timing counts.
    """
    session = Session(engine="JITTED", rules=install_full_rulebase, kernel_audit=False)
    kernel, firewall = session.kernel, session.firewall
    root = spawn_root_shell(kernel)
    with record_mediations(firewall) as stream:
        for _ in range(max(records // 4, 100)):
            kernel.sys.stat(root, "/etc/passwd")
    getattr_record = next(op for op in stream if op.op.value == "FILE_GETATTR")
    homogeneous = [getattr_record] * records

    def time_mode(operations, batched):
        best = float("inf")
        reference = None
        for _ in range(repeats):
            reset_mediation_state(firewall)
            start = time.perf_counter()
            verdicts = replay_mediations(firewall, operations, batched=batched)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            reference = verdicts
        return best / len(operations) * 1e6, reference

    out = {}
    for name, operations in (("homogeneous", homogeneous), ("stream", stream)):
        percall_us, percall_verdicts = time_mode(operations, False)
        batched_us, batched_verdicts = time_mode(operations, True)
        assert batched_verdicts == percall_verdicts
        out[name] = (percall_us, batched_us, batched_us / percall_us)
    return out


def test_scale_grid(run_once, emit):
    """The scaling curve: serial vs 1/2/4/8 spawned workers.

    Each point repeats ``PF_SCALE_REPEATS`` times for a stdev; every
    sharded run's verdict stream is asserted identical to the serial
    reference before its timing counts.  At full budget the JSON
    artifact is (re)written and the acceptance gates apply: >= 2.5x
    aggregate CPU-time throughput at 4 workers, ``mediate_batch`` <=
    0.9x the per-call loop on homogeneous batches.
    """
    sessions, loops, repeats = _sessions(), _loops(), _repeats()
    grid = _worker_grid()
    world = ("macro_scale", {"sessions": sessions})
    rules_text = _rules_text()
    trace = record_scale_trace(sessions=sessions, loops=loops, profile="mixed")

    def sweep():
        serial_runs = [
            replay_serial(trace, rules_text, world=world) for _ in range(repeats)
        ]
        reference = serial_runs[0]["merged"]["verdicts"]
        points = {}
        for workers in grid:
            runs = []
            for _ in range(repeats):
                result = replay_sharded(
                    trace, rules_text, workers=workers, world=world)
                assert result["merged"]["verdicts"] == reference
                runs.append(result)
            points[workers] = runs
        return serial_runs, points

    serial_runs, points = run_once(sweep)
    serial_cpu = [run["aggregate"]["throughput_cpu"] for run in serial_runs]
    serial_mean, serial_stdev = _mean_stdev(serial_cpu)
    batch = _measure_batch_ratio()
    percall_us, batched_us, batch_ratio = batch["homogeneous"]
    stream_percall_us, stream_batched_us, stream_ratio = batch["stream"]

    rows = [("serial", 1, serial_mean, serial_stdev, 1.0, 1.0)]
    payload_points = {}
    for workers in grid:
        cpu = [run["aggregate"]["throughput_cpu"] for run in points[workers]]
        wall = [run["aggregate"]["throughput_wall"] for run in points[workers]]
        cpu_mean, cpu_stdev = _mean_stdev(cpu)
        wall_mean, wall_stdev = _mean_stdev(wall)
        speedup = cpu_mean / serial_mean
        rows.append((
            "sharded", workers, cpu_mean, cpu_stdev,
            round(speedup, 2), round(speedup / workers, 2),
        ))
        payload_points[str(workers)] = {
            "throughput_cpu_mean": cpu_mean,
            "throughput_cpu_stdev": cpu_stdev,
            "throughput_wall_mean": wall_mean,
            "throughput_wall_stdev": wall_stdev,
            "speedup_cpu": round(speedup, 3),
            "efficiency_cpu": round(speedup / workers, 3),
        }
    emit(format_table(
        ["mode", "workers", "records/cpu-s", "stdev", "speedup", "efficiency"],
        rows,
        title="Macro-replay scaling ({} entries, basis: worker CPU time)".format(
            len(trace.entries)),
    ))
    emit("mediate_batch homogeneous: per-call {:.2f}us  batched {:.2f}us  "
         "ratio {:.3f}".format(percall_us, batched_us, batch_ratio))
    emit("mediate_batch stream: per-call {:.2f}us  batched {:.2f}us  "
         "ratio {:.3f}".format(stream_percall_us, stream_batched_us, stream_ratio))

    full_budget = loops >= FULL_BUDGET_LOOPS
    if full_budget:
        payload = {
            "benchmark": "macro_scale",
            "profile": "mixed",
            "sessions": sessions,
            "loops": loops,
            "repeats": repeats,
            "trace_entries": len(trace.entries),
            "python": platform.python_version(),
            "host_cores": _usable_cores(),
            "scaling_basis": "worker-cpu-time",
            "note": (
                "aggregate throughput = sum over workers of "
                "shard_records / per-worker CPU seconds (process_time "
                "around the replay loop; setup excluded). Wall-clock "
                "figures are reported alongside; on a host with fewer "
                "cores than workers only the CPU basis reflects "
                "per-worker efficiency."
            ),
            "serial": {
                "throughput_cpu_mean": serial_mean,
                "throughput_cpu_stdev": serial_stdev,
            },
            "points": payload_points,
            "mediate_batch": {
                "homogeneous_percall_us": round(percall_us, 3),
                "homogeneous_batched_us": round(batched_us, 3),
                "ratio": round(batch_ratio, 3),
                "stream_percall_us": round(stream_percall_us, 3),
                "stream_batched_us": round(stream_batched_us, 3),
                "stream_ratio": round(stream_ratio, 3),
            },
        }
        with open(SCALE_JSON, "w") as fh:
            fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        if 4 in points:
            assert payload_points["4"]["speedup_cpu"] >= 2.5, (
                "4-worker aggregate CPU-time speedup below gate: "
                "{}".format(payload_points["4"]["speedup_cpu"]))
        assert batch_ratio <= 0.9, (
            "mediate_batch not fast enough on homogeneous batches: "
            "{:.3f}x per-call".format(batch_ratio))


def test_batch_fast_path(emit):
    """Standalone gate for the batched fast path (cheap enough for CI):
    homogeneous batches must run at <= 0.9x the per-call loop."""
    batch = _measure_batch_ratio(records=1500, repeats=3)
    percall_us, batched_us, ratio = batch["homogeneous"]
    emit("mediate_batch smoke: per-call {:.2f}us  batched {:.2f}us  ratio "
         "{:.3f}".format(percall_us, batched_us, ratio))
    assert ratio <= 0.9


def test_scale_smoke(emit):
    """CI scaling smoke: 2 spawned workers on the null-heavy trace.

    Gates verdict parity with the serial reference and aggregate
    CPU-time throughput >= serial — on any host, two workers that each
    spend no more CPU per record than the serial run clears this.
    """
    sessions = int(os.environ.get("PF_SCALE_SMOKE_SESSIONS", 4))
    loops = int(os.environ.get("PF_SCALE_SMOKE_LOOPS", 25))
    world = ("macro_scale", {"sessions": sessions})
    rules_text = _rules_text()
    trace = record_scale_trace(sessions=sessions, loops=loops, profile="null")
    serial = replay_serial(trace, rules_text, world=world)
    sharded = replay_sharded(trace, rules_text, workers=2, world=world)
    assert sharded["merged"]["verdicts"] == serial["merged"]["verdicts"]
    serial_tp = serial["aggregate"]["throughput_cpu"]
    sharded_tp = sharded["aggregate"]["throughput_cpu"]
    emit("scale smoke (null trace, {} entries): serial {:.0f} rec/cpu-s, "
         "2 workers {:.0f} rec/cpu-s".format(
             len(trace.entries), serial_tp, sharded_tp))
    assert sharded_tp >= serial_tp, (
        "sharded aggregate throughput fell below serial: "
        "{:.0f} < {:.0f}".format(sharded_tp, serial_tp))


def test_shard_manifest_reproducible(reseed):
    """Two back-to-back record+plan runs produce identical manifests.

    Workload recording, the randomized rule base, and both shard
    strategies must be deterministic under the harness's pinned seeds
    — a manifest digest that wobbles between runs would make every
    scaling number unattributable.
    """

    def one_run():
        reseed()
        trace = record_scale_trace(sessions=5, loops=6, profile="mixed")
        rules = generate_full_rulebase(size=120)
        manifests = {
            strategy: plan_shards(trace, 3, strategy=strategy).manifest()
            for strategy in ("greedy", "round_robin")
        }
        return rules, manifests

    first_rules, first = one_run()
    second_rules, second = one_run()
    assert first_rules == second_rules
    assert first == second
    for strategy in first:
        assert first[strategy]["digest"] == second[strategy]["digest"]
