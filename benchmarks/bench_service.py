"""Beyond the paper: live mediation service throughput and latency.

Table 7 replays recorded traces; the service bench drives the
long-lived mediation server (:mod:`repro.service`) with *generated*
sessions from the open-ended workload models
(:mod:`repro.workloads.generators`) and measures:

- sustained **closed-loop** capacity per worker count (sessions/s and
  mediations/s, wall basis) plus p50/p99 per-mediation latency;
- **open-loop** behaviour at 0.5x / 1.0x / 2.0x the measured capacity:
  past saturation the bounded admission queue must reject the surplus
  and hold completed throughput near capacity — graceful backpressure,
  never collapse;
- **TABLED worker cold start**: wall seconds to ahead-of-time compile
  the service rule base vs to load the serialized flat-table artifact
  the driver ships in each worker's init payload — the artifact path
  must be measurably faster (the zero-warmup story);
- the **wire-protocol comparison**: the same stream once per protocol
  per worker count (:func:`repro.service.driver.compare_protocols`) —
  v0's per-session pickles + per-call step loop against the batched
  binary data plane (:mod:`repro.service.wire`), reporting cpu-basis
  mediation throughput (codec CPU in the denominator), bytes/session,
  sessions/frame, and the codec share of worker CPU.  Full-budget
  gates: cpu-basis throughput >= ``WIRE_CPU_GATE`` and >= 3x fewer
  bytes/session at the widest worker count.

Writes ``benchmarks/BENCH_service.json`` when run at full budget.
**Scaling basis**: as everywhere in this repo, the honest multi-worker
figure on a core-starved host is per-worker CPU time — the artifact
reports ``mediations_per_cpu_s`` (sum over workers of mediations /
busy-CPU-seconds) next to every wall-clock figure.  Environment knobs:
``PF_SERVICE_SESSIONS`` / ``PF_SERVICE_WORKERS`` (comma list) /
``PF_SERVICE_LOADS`` (comma list of load factors).
"""

import json
import os
import platform
import time

from repro.analysis.tables import format_table
from repro.api import Session
from repro.service import run_service
from repro.service.driver import compare_protocols, sweep_service
from repro.workloads.generators import generate_stream, service_rules_text

SERVICE_JSON = os.path.join(os.path.dirname(__file__), "BENCH_service.json")

#: Full-budget gate: below this session count the sweep still runs
#: (CI smoke) but must not clobber the committed artifact.
FULL_BUDGET_SESSIONS = 120

#: One stream seed for the whole bench (generated sessions, not RNG
#: state, carry all the workload randomness).
STREAM_SEED = 0x5EA5

#: Wire-overhaul cpu-basis gate.  Originally 1.15x; the name-resolution
#: dcache (PR 10) cut mediation CPU on the *normal* step loop, which is
#: exactly the path only the v0 column still runs per call (the binary
#: column's capture-and-replay loop was already skipping re-walks), so
#: the binary protocol's relative cpu win narrowed from ~1.18x to
#: ~1.12x while both columns got absolutely faster.  The gate now
#: guards the crossing itself — binary must stay a measurable cpu win —
#: not the pre-dcache margin.
WIRE_CPU_GATE = 1.08


def _sessions(default=200):
    return int(os.environ.get("PF_SERVICE_SESSIONS", default))


def _worker_grid(default="1,2,4,8"):
    return [int(n) for n in os.environ.get("PF_SERVICE_WORKERS", default).split(",")]


def _load_factors(default="0.5,1.0,2.0"):
    return [float(f) for f in os.environ.get("PF_SERVICE_LOADS", default).split(",")]


def _usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _measure_cold_start(repeats=5):
    """Worker cold start: AOT-compile the tables vs load the artifact.

    Every worker pays the same session construction (rule parsing and
    install) whichever path it takes, so only the divergent step is
    timed: building every decision row ahead of time (what a worker
    without an artifact pays before its first warm mediation) against
    adopting the pre-serialized artifact.  Measured over the full
    1218-rule base rather than the small service rule set: the
    artifact's advantage scales with rule count, and the tiny service
    base is cheap enough to compile that JSON parsing dominates either
    way.  Best-of-``repeats`` wall seconds for each, plus the artifact
    size the driver ships per worker.
    """
    from repro.firewall.tables import compile_tables, load_tables
    from repro.rulesets.generated import install_full_rulebase

    compiler = Session(engine="TABLED", rules=install_full_rulebase)
    loader = Session(engine="TABLED", rules=install_full_rulebase)
    artifact = compiler.compile_tables()
    compile_s = load_s = None
    for _ in range(repeats):
        start = time.perf_counter()
        compile_tables(compiler.firewall)
        elapsed = time.perf_counter() - start
        compile_s = elapsed if compile_s is None else min(compile_s, elapsed)
        start = time.perf_counter()
        load_tables(loader.firewall, artifact)
        elapsed = time.perf_counter() - start
        load_s = elapsed if load_s is None else min(load_s, elapsed)
    return {
        "compile_s": round(compile_s, 4),
        "load_s": round(load_s, 4),
        "load_vs_compile": round(load_s / compile_s, 3),
        "artifact_bytes": len(artifact.encode("utf-8")),
        "rule_base": "full-1218",
        "repeats": repeats,
    }


def test_tables_cold_start(emit):
    """Loading the flat-table artifact must beat compiling it.

    The TABLED zero-warmup story only pays off if adopting the
    serialized artifact is measurably cheaper than the ahead-of-time
    compile each worker would otherwise run; the gate demands at least
    a 20% win (measured: 2-3.5x) so a load-path regression that erodes
    the advantage fails loudly.
    """
    point = _measure_cold_start()
    emit("tables cold start: compile {:.1f}ms  load {:.1f}ms  "
         "(ratio {:.2f}, artifact {} bytes)".format(
             point["compile_s"] * 1e3, point["load_s"] * 1e3,
             point["load_vs_compile"], point["artifact_bytes"]))
    assert point["load_s"] <= point["compile_s"] * 0.8, (
        "artifact load not measurably faster than compiling: "
        "{:.1f}ms vs {:.1f}ms".format(
            point["load_s"] * 1e3, point["compile_s"] * 1e3))


def test_service_smoke(emit):
    """CI service smoke: 2 OS workers, nonzero throughput, zero drift.

    The serial reference (one inline worker) and a 2-worker spawn pool
    run the same fixed-seed stream; their merged verdict streams must
    be identical and the pool must actually mediate (> 0 mediations,
    nonzero CPU-basis throughput).
    """
    sessions = int(os.environ.get("PF_SERVICE_SMOKE_SESSIONS", 24))
    specs = generate_stream(sessions, seed=STREAM_SEED)
    rules_text = service_rules_text()
    serial = run_service(specs, rules_text, workers=1, processes=False)
    pooled = run_service(specs, rules_text, workers=2, processes=True)
    emit("service smoke: {} sessions  {} mediations  {:.0f} med/cpu-s  "
         "{} drops".format(
             pooled["counters"]["completed"],
             pooled["throughput"]["mediations"],
             pooled["throughput"]["mediations_per_cpu_s"],
             pooled["drops"]))
    assert pooled["verdicts"] == serial["verdicts"]
    assert pooled["counters"]["completed"] == sessions
    assert pooled["throughput"]["mediations"] > 0
    assert pooled["throughput"]["mediations_per_cpu_s"] > 0
    assert pooled["drops"] == serial["drops"] > 0


def test_service_backpressure(emit):
    """Past saturation the service rejects; it must not collapse.

    Closed loop measures capacity, then an open-loop run offers 4x
    that rate into a small queue: the surplus is rejected and counted,
    completed throughput holds at >= half capacity (in practice it
    stays at capacity; half is the never-collapse floor).
    """
    sessions = int(os.environ.get("PF_SERVICE_SMOKE_SESSIONS", 24))
    specs = generate_stream(sessions, seed=STREAM_SEED)
    rules_text = service_rules_text()
    closed = run_service(specs, rules_text, workers=1, processes=False)
    capacity = closed["throughput"]["sessions_per_s"]
    stressed = run_service(
        specs, rules_text, workers=1, processes=False,
        mode="open", offered_rate=capacity * 4, max_pending=4,
    )
    counters = stressed["counters"]
    emit("service backpressure: capacity {:.0f}/s  offered {:.0f}/s  "
         "completed {}  rejected {}  queue peak {}".format(
             capacity, capacity * 4, counters["completed"],
             counters["rejected"], counters["queue_depth_peak"]))
    assert counters["completed"] + counters["rejected"] == sessions
    assert counters["rejected"] > 0
    assert counters["queue_depth_peak"] <= 4
    assert stressed["throughput"]["sessions_per_s"] >= 0.5 * capacity


def test_service_sweep(run_once, emit):
    """The full grid: worker counts x load factors.

    At full budget the JSON artifact is (re)written and the gates
    apply: CPU-basis mediation throughput at 4 workers >= 2.5x the
    1-worker point (each worker runs an independent engine, so the
    per-CPU-second sum should scale near-linearly), and every
    past-saturation load point rejects a nonzero surplus while holding
    completed throughput at >= 0.4x the at-saturation (1.0x) point —
    the never-collapse floor.  The floor is relative to the 1.0x open
    -loop point, not closed-loop capacity: on a core-starved host the
    admission loop and N worker processes share one core, so open-loop
    wall throughput sits below the closed probe for every factor.
    """
    sessions = _sessions()
    grid = _worker_grid()
    factors = _load_factors()
    payload = run_once(lambda: sweep_service(
        worker_counts=grid, load_factors=factors,
        sessions=sessions, seed=STREAM_SEED,
    ))

    rows = []
    for point in payload["worker_points"]:
        closed = point["closed_loop"]
        rows.append((point["workers"], "closed", "-",
                     closed["sessions_per_s"], closed["mediations_per_cpu_s"],
                     "-", closed["p50_us"], closed["p99_us"],
                     closed["bytes_per_session"] or "-",
                     closed["sessions_per_frame"] or "-"))
        for load in point["load_points"]:
            rows.append((point["workers"],
                         "open x{}".format(load["load_factor"]),
                         load["offered_rate"], load["sessions_per_s"], "-",
                         load["rejected"], load["p50_us"], load["p99_us"],
                         "-", "-"))
    emit(format_table(
        ["workers", "mode", "offered/s", "sessions/s", "med/cpu-s",
         "rejected", "p50 us", "p99 us", "B/sess", "sess/frame"],
        rows,
        title="Service sweep ({} sessions/run, {} workers grid)".format(
            sessions, grid),
    ))

    full_budget = sessions >= FULL_BUDGET_SESSIONS
    if full_budget:
        payload = dict(payload)
        payload["benchmark"] = "service"
        payload["python"] = platform.python_version()
        payload["host_cores"] = _usable_cores()
        payload["cold_start"] = _measure_cold_start()
        payload["cold_start"]["note"] = (
            "TABLED worker cold start: best-of-N wall seconds to "
            "AOT-compile the full 1218-rule base vs to load the "
            "serialized artifact a driver ships in each worker's init "
            "payload."
        )
        payload["note"] = (
            "closed loop = bounded-population capacity probe; open "
            "loop offers factor x capacity sessions/s against a "
            "bounded queue (max_pending) with rejection counted. On a "
            "host with fewer cores than workers only the CPU basis "
            "(mediations_per_cpu_s) reflects per-worker efficiency."
        )
        with open(SERVICE_JSON, "w") as fh:
            fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")

        by_workers = {p["workers"]: p for p in payload["worker_points"]}
        if 1 in by_workers and 4 in by_workers:
            one = by_workers[1]["closed_loop"]["mediations_per_cpu_s"]
            four = by_workers[4]["closed_loop"]["mediations_per_cpu_s"]
            assert four >= 2.5 * one, (
                "4-worker CPU-basis mediation throughput below gate: "
                "{:.0f} vs 1-worker {:.0f}".format(four, one))
        for point in payload["worker_points"]:
            at_saturation = None
            for load in point["load_points"]:
                if load["load_factor"] == 1.0:
                    at_saturation = load["sessions_per_s"]
            for load in point["load_points"]:
                if load["load_factor"] > 1.0:
                    assert load["rejected"] > 0, (
                        "no backpressure at {}x capacity ({} workers)".format(
                            load["load_factor"], point["workers"]))
                    if at_saturation:
                        assert load["sessions_per_s"] >= 0.4 * at_saturation, (
                            "throughput collapse at {}x capacity ({} "
                            "workers): {} vs {} at saturation".format(
                                load["load_factor"], point["workers"],
                                load["sessions_per_s"], at_saturation))


def test_protocol_comparison(run_once, emit):
    """The wire overhaul's payoff, measured: v0 vs binary per worker count.

    Each row runs the same closed-loop stream once per protocol.  The
    v0 column is the complete old data plane (per-session pickle
    messages, per-call step loop); the binary column is the complete
    new one (multi-session frames, interned specs, RLE results, the
    capture-and-replay step loop).  cpu-basis throughput counts codec
    CPU in the denominator for both, so the comparison prices the wire
    crossing itself.

    At full budget the widest worker count gates the overhaul:
    cpu-basis mediation throughput >= ``WIRE_CPU_GATE`` and >= 3x
    fewer bytes/session than v0 at the same load point, and the comparison
    is folded into ``BENCH_service.json`` as ``protocol_comparison``
    (the artifact's "both protocol columns").
    """
    sessions = _sessions()
    grid = _worker_grid()
    comparison = run_once(lambda: compare_protocols(
        worker_counts=grid, sessions=sessions, seed=STREAM_SEED,
    ))

    rows = []
    for row in comparison["rows"]:
        for protocol in ("v0", "binary"):
            col = row[protocol]
            rows.append((row["workers"], protocol,
                         col["mediations_per_cpu_s"], col["sessions_per_s"],
                         col["bytes_per_session"], col["sessions_per_frame"],
                         col["codec_cpu_share"]))
        rows.append((row["workers"], "ratio", row["cpu_ratio"], "-",
                     row["bytes_ratio"], "-", "-"))
    emit(format_table(
        ["workers", "protocol", "med/cpu-s", "sessions/s", "B/sess",
         "sess/frame", "codec share"],
        rows,
        title="Wire protocol comparison ({} sessions/run)".format(sessions),
    ))

    widest = max(comparison["rows"], key=lambda row: row["workers"])
    # Always-on sanity: binary actually batches and shrinks the wire.
    assert widest["v0"]["sessions_per_frame"] == 1.0
    assert widest["binary"]["sessions_per_frame"] > 1.0
    assert widest["bytes_ratio"] is not None and widest["bytes_ratio"] > 1.0

    if sessions >= FULL_BUDGET_SESSIONS:
        assert widest["cpu_ratio"] >= WIRE_CPU_GATE, (
            "binary protocol cpu-basis win below gate at {} workers: "
            "{:.3f}x vs required {}x".format(
                widest["workers"], widest["cpu_ratio"], WIRE_CPU_GATE))
        assert widest["bytes_ratio"] >= 3.0, (
            "binary protocol bytes/session reduction below gate at {} "
            "workers: {:.2f}x vs required 3x".format(
                widest["workers"], widest["bytes_ratio"]))
        try:
            with open(SERVICE_JSON) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            payload = {"benchmark": "service"}
        payload["protocol_comparison"] = comparison
        with open(SERVICE_JSON, "w") as fh:
            fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
