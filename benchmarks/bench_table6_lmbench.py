"""Table 6: per-syscall microbenchmarks across engine configurations.

Columns: DISABLED (baseline), BASE (enabled, empty rules), FULL (1218
rules, no optimizations), CONCACHE (+context caching), LAZYCON (+lazy
retrieval), EPTSPC (+entrypoint chains), COMPILED (+compiled dispatch
and the negative-decision cache), JITTED (COMPILED + per-rule codegen
and the resource-context cache), TABLED (JITTED + ahead-of-time flat
tables: whole-rule-base state enumeration collapses constant-operand
chains into branch/terminal lookups with per-edge JITTED fallback),
TRACED (COMPILED with the full observability layer on: decision
tracing + metrics registry — its distance from COMPILED is the
published tracing-overhead number, and COMPILED itself must stay
within noise of its pre-observability numbers, pinning the disabled
path).  Shape expectations follow the paper: BASE ≈ DISABLED, FULL is
the blow-up (worst on ``stat``/``open``), each optimization column
recovers cost with EPTSPC landing within a few percent on most rows —
COMPILED must never lose to EPTSPC, winning outright on the
path-walking rows the decision cache short-circuits, JITTED must never
lose to COMPILED with a sub-1.0 geomean, and TABLED must never lose to
JITTED past noise while beating COMPILED on geomean.

``PF_TABLE6_ITERS`` overrides the grid's iteration count; small values
(< 200, e.g. the CI smoke run) skip the timing-shape assertions, which
need steady-state numbers to be meaningful.  ``test_jitted_perf_smoke``
is the CI perf gate: a quick COMPILED-vs-JITTED run (iteration budget
``PF_PERF_SMOKE_ITERS``) that fails when JITTED regresses beyond
tolerance on the ``null``/``read``/``stat`` rows.

The grid also writes ``benchmarks/BENCH_hotpath.json`` — the committed
perf-trajectory artifact comparing EPTSPC, COMPILED, JITTED and TABLED
per syscall row, with per-row standard deviations as error bars.
"""

import json
import os
import platform
import statistics

import pytest

from repro.analysis.tables import format_table, overhead_pct
from repro.workloads.lmbench import LMBENCH_OPS, LmbenchSuite, TABLE6_COLUMNS, run_table6

COLUMNS = ["DISABLED", "BASE", "FULL", "CONCACHE", "LAZYCON", "EPTSPC", "COMPILED", "JITTED", "TABLED", "TRACED"]

HOTPATH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_hotpath.json")

#: Timing-noise allowance for the "COMPILED never loses to EPTSPC" and
#: "JITTED never loses to COMPILED" sweeps: rows where two
#: configurations do the same work should tie, and a tie under a noisy
#: scheduler can wobble either way.
NOISE_TOLERANCE = 1.25

#: Perf-smoke gate tolerance: looser than the steady-state sweep
#: because the smoke budget is deliberately small.
SMOKE_TOLERANCE = 1.35

#: Rows the CI perf-smoke gate checks (the acceptance rows).
SMOKE_ROWS = ("null", "read", "stat")


def _grid_iterations(default=1500):
    return int(os.environ.get("PF_TABLE6_ITERS", default))


def _geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


@pytest.mark.parametrize("column", COLUMNS)
def test_stat_per_column(benchmark, column):
    suite = LmbenchSuite(column)
    benchmark(suite.op_stat)


@pytest.mark.parametrize("column", ["DISABLED", "BASE", "EPTSPC", "COMPILED"])
def test_open_close_per_column(benchmark, column):
    suite = LmbenchSuite(column)
    benchmark(suite.op_open_close)


def _stdev_fields(samples, op):
    """Per-column sample standard deviations for one syscall row."""
    out = {}
    for column, values in sorted((samples or {}).get(op, {}).items()):
        out[column] = round(statistics.stdev(values), 3) if len(values) >= 2 else 0.0
    return out


def _emit_hotpath_json(results, iterations, samples=None):
    """Persist the EPTSPC/COMPILED/JITTED/TABLED trajectory artifact."""
    rows = {}
    for op in LMBENCH_OPS:
        eptspc = results[op]["EPTSPC"]
        compiled = results[op]["COMPILED"]
        jitted = results[op]["JITTED"]
        tabled = results[op]["TABLED"]
        traced = results[op]["TRACED"]
        rows[op] = {
            "disabled_us": round(results[op]["DISABLED"], 3),
            "eptspc_us": round(eptspc, 3),
            "compiled_us": round(compiled, 3),
            "jitted_us": round(jitted, 3),
            "tabled_us": round(tabled, 3),
            "traced_us": round(traced, 3),
            "compiled_vs_eptspc": round(compiled / eptspc, 3) if eptspc else None,
            "jitted_vs_compiled": round(jitted / compiled, 3) if compiled else None,
            "tabled_vs_jitted": round(tabled / jitted, 3) if jitted else None,
            "tabled_vs_compiled": round(tabled / compiled, 3) if compiled else None,
            "traced_vs_compiled": round(traced / compiled, 3) if compiled else None,
            "stdev_us": _stdev_fields(samples, op),
        }
    payload = {
        "benchmark": "table6_lmbench_hotpath",
        "iterations": iterations,
        "python": platform.python_version(),
        "columns_compared": ["EPTSPC", "COMPILED", "JITTED", "TABLED", "TRACED"],
        "rows": rows,
    }
    rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    # Smoke runs (tiny iteration budgets) exercise the emitter but must
    # not clobber the committed steady-state artifact.
    if iterations >= 200:
        with open(HOTPATH_JSON, "w") as fh:
            fh.write(rendered)
    return payload


def test_table6_grid(run_once, emit):
    iterations = _grid_iterations()
    samples = {}
    results = run_once(run_table6, iterations=iterations, samples_out=samples)
    rows = []
    for op in LMBENCH_OPS:
        base = results[op]["DISABLED"]
        row = [op] + [
            "{:.2f} ({:+.1f}%)".format(results[op][c], overhead_pct(base, results[op][c]))
            for c in COLUMNS
        ]
        rows.append(tuple(row))
    emit(
        format_table(
            ["syscall"] + COLUMNS,
            rows,
            title="Table 6: lmbench-style microbenchmarks (us, % vs DISABLED)",
        )
    )
    _emit_hotpath_json(results, iterations, samples)

    if iterations < 200:
        pytest.skip("PF_TABLE6_ITERS too small for stable timing-shape assertions")

    stat = {c: results["stat"][c] for c in COLUMNS}
    null = {c: results["null"][c] for c in COLUMNS}
    # FULL is the outlier; the optimizations claw the cost back.  In
    # our Python engine rule *scanning* dominates on path-walking
    # syscalls (so EPTSPC is the decisive column there), while context
    # *collection* dominates on null (so LAZYCON shows there) — the
    # paper's C engine had collection dominating everywhere.
    assert stat["FULL"] > stat["BASE"]
    assert stat["EPTSPC"] < stat["FULL"]
    assert null["LAZYCON"] < null["FULL"]
    assert null["EPTSPC"] < null["FULL"]
    # Resource syscalls are hit harder than null in FULL (asserted on
    # absolute added cost; our simulated null's ~1µs baseline inflates
    # relative numbers).
    stat_added = results["stat"]["FULL"] - results["stat"]["DISABLED"]
    null_added = results["null"]["FULL"] - results["null"]["DISABLED"]
    assert stat_added > 3 * null_added

    # COMPILED extends the ladder: never worse than EPTSPC anywhere
    # (modulo timing noise on rows where both configurations do the
    # same work), and strictly faster on the path-walking rows whose
    # traversals the negative-decision cache short-circuits.
    for op in LMBENCH_OPS:
        assert results[op]["COMPILED"] <= results[op]["EPTSPC"] * NOISE_TOLERANCE, (
            "COMPILED regressed on {}: {:.2f}us vs EPTSPC {:.2f}us".format(
                op, results[op]["COMPILED"], results[op]["EPTSPC"]
            )
        )
    assert results["stat"]["COMPILED"] < results["stat"]["EPTSPC"]
    assert results["open+close"]["COMPILED"] < results["open+close"]["EPTSPC"]

    # JITTED extends the ladder once more: per-rule codegen flattens
    # every chain into one generated function, so no row may regress
    # past noise and the geomean across all nine rows must show a net
    # win.  Strict wins are demanded where the per-syscall walk cost
    # the codegen removes dominates the row (`null`: nothing but the
    # syscallbegin walk; `stat`: path-walk mediation fan-out); the
    # fork rows are process construction, not mediation, so they only
    # get the tolerance bound.
    ratios = []
    for op in LMBENCH_OPS:
        jitted = results[op]["JITTED"]
        compiled = results[op]["COMPILED"]
        ratios.append(jitted / compiled)
        assert jitted <= compiled * NOISE_TOLERANCE, (
            "JITTED regressed on {}: {:.2f}us vs COMPILED {:.2f}us".format(op, jitted, compiled)
        )
    assert _geomean(ratios) < 1.0, "JITTED geomean vs COMPILED: {:.3f}".format(_geomean(ratios))
    assert results["null"]["JITTED"] < results["null"]["COMPILED"]
    assert results["stat"]["JITTED"] < results["stat"]["COMPILED"]

    # TABLED caps the ladder: ahead-of-time flat tables replace the
    # generated predicate chains with branch lookups, so no row may
    # lose to JITTED past noise — the two engines do near-identical
    # per-mediation work when a chain lowers fully, and the table wins
    # where constant-operand fan-out collapses into one dict probe.
    # The robust headline gate is the geomean against COMPILED: two
    # codegen rungs of headroom make it stable under scheduler noise,
    # where the TABLED/JITTED geomean sits near 1.0 by construction.
    tabled_vs_compiled = []
    for op in LMBENCH_OPS:
        tabled = results[op]["TABLED"]
        jitted = results[op]["JITTED"]
        tabled_vs_compiled.append(tabled / results[op]["COMPILED"])
        assert tabled <= jitted * NOISE_TOLERANCE, (
            "TABLED regressed on {}: {:.2f}us vs JITTED {:.2f}us".format(op, tabled, jitted)
        )
    assert _geomean(tabled_vs_compiled) < 1.0, (
        "TABLED geomean vs COMPILED: {:.3f}".format(_geomean(tabled_vs_compiled))
    )


def test_jitted_perf_smoke(emit):
    """CI perf gate: JITTED must not lose to COMPILED on the hot rows.

    Runs only the two columns over a small iteration budget
    (``PF_PERF_SMOKE_ITERS``, default 400) so it is cheap enough for
    every CI run, and uses the looser :data:`SMOKE_TOLERANCE` to absorb
    short-run scheduler noise on the checked ``null``/``read``/``stat``
    rows.
    """
    iterations = int(os.environ.get("PF_PERF_SMOKE_ITERS", 400))
    results = run_table6(iterations=iterations, columns=["COMPILED", "JITTED"])
    for op in SMOKE_ROWS:
        jitted = results[op]["JITTED"]
        compiled = results[op]["COMPILED"]
        emit(
            "perf-smoke {}: COMPILED {:.2f}us JITTED {:.2f}us (ratio {:.3f})".format(
                op, compiled, jitted, jitted / compiled if compiled else float("nan")
            )
        )
        assert jitted <= compiled * SMOKE_TOLERANCE, (
            "JITTED perf-smoke regression on {}: {:.2f}us vs COMPILED {:.2f}us "
            "(tolerance x{})".format(op, jitted, compiled, SMOKE_TOLERANCE)
        )
