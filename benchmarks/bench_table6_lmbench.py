"""Table 6: per-syscall microbenchmarks across engine configurations.

Columns: DISABLED (baseline), BASE (enabled, empty rules), FULL (1218
rules, no optimizations), CONCACHE (+context caching), LAZYCON (+lazy
retrieval), EPTSPC (+entrypoint chains), COMPILED (+compiled dispatch
and the negative-decision cache), TRACED (COMPILED with the full
observability layer on: decision tracing + metrics registry — its
distance from COMPILED is the published tracing-overhead number, and
COMPILED itself must stay within noise of its pre-observability
numbers, pinning the disabled path).  Shape expectations follow the paper:
BASE ≈ DISABLED, FULL is the blow-up (worst on ``stat``/``open``), each
optimization column recovers cost with EPTSPC landing within a few
percent on most rows — and COMPILED must never lose to EPTSPC, winning
outright on the path-walking rows the decision cache short-circuits.

``PF_TABLE6_ITERS`` overrides the grid's iteration count; small values
(< 200, e.g. the CI smoke run) skip the timing-shape assertions, which
need steady-state numbers to be meaningful.

The grid also writes ``benchmarks/BENCH_hotpath.json`` — the committed
perf-trajectory artifact comparing EPTSPC and COMPILED per syscall row.
"""

import json
import os
import platform

import pytest

from repro.analysis.tables import format_table, overhead_pct
from repro.workloads.lmbench import LMBENCH_OPS, LmbenchSuite, TABLE6_COLUMNS, run_table6

COLUMNS = ["DISABLED", "BASE", "FULL", "CONCACHE", "LAZYCON", "EPTSPC", "COMPILED", "TRACED"]

HOTPATH_JSON = os.path.join(os.path.dirname(__file__), "BENCH_hotpath.json")

#: Timing-noise allowance for the "COMPILED never loses to EPTSPC"
#: sweep: rows the decision cache cannot help (e.g. ``null``, whose
#: only rule reads syscall args) should tie, and a tie under a noisy
#: scheduler can wobble either way.
NOISE_TOLERANCE = 1.25


def _grid_iterations(default=1500):
    return int(os.environ.get("PF_TABLE6_ITERS", default))


@pytest.mark.parametrize("column", COLUMNS)
def test_stat_per_column(benchmark, column):
    suite = LmbenchSuite(column)
    benchmark(suite.op_stat)


@pytest.mark.parametrize("column", ["DISABLED", "BASE", "EPTSPC", "COMPILED"])
def test_open_close_per_column(benchmark, column):
    suite = LmbenchSuite(column)
    benchmark(suite.op_open_close)


def _emit_hotpath_json(results, iterations):
    """Persist the EPTSPC-vs-COMPILED trajectory artifact."""
    rows = {}
    for op in LMBENCH_OPS:
        eptspc = results[op]["EPTSPC"]
        compiled = results[op]["COMPILED"]
        traced = results[op]["TRACED"]
        rows[op] = {
            "disabled_us": round(results[op]["DISABLED"], 3),
            "eptspc_us": round(eptspc, 3),
            "compiled_us": round(compiled, 3),
            "traced_us": round(traced, 3),
            "compiled_vs_eptspc": round(compiled / eptspc, 3) if eptspc else None,
            "traced_vs_compiled": round(traced / compiled, 3) if compiled else None,
        }
    payload = {
        "benchmark": "table6_lmbench_hotpath",
        "iterations": iterations,
        "python": platform.python_version(),
        "columns_compared": ["EPTSPC", "COMPILED", "TRACED"],
        "rows": rows,
    }
    rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    # Smoke runs (tiny iteration budgets) exercise the emitter but must
    # not clobber the committed steady-state artifact.
    if iterations >= 200:
        with open(HOTPATH_JSON, "w") as fh:
            fh.write(rendered)
    return payload


def test_table6_grid(run_once, emit):
    iterations = _grid_iterations()
    results = run_once(run_table6, iterations=iterations)
    rows = []
    for op in LMBENCH_OPS:
        base = results[op]["DISABLED"]
        row = [op] + [
            "{:.2f} ({:+.1f}%)".format(results[op][c], overhead_pct(base, results[op][c]))
            for c in COLUMNS
        ]
        rows.append(tuple(row))
    emit(
        format_table(
            ["syscall"] + COLUMNS,
            rows,
            title="Table 6: lmbench-style microbenchmarks (us, % vs DISABLED)",
        )
    )
    _emit_hotpath_json(results, iterations)

    if iterations < 200:
        pytest.skip("PF_TABLE6_ITERS too small for stable timing-shape assertions")

    stat = {c: results["stat"][c] for c in COLUMNS}
    null = {c: results["null"][c] for c in COLUMNS}
    # FULL is the outlier; the optimizations claw the cost back.  In
    # our Python engine rule *scanning* dominates on path-walking
    # syscalls (so EPTSPC is the decisive column there), while context
    # *collection* dominates on null (so LAZYCON shows there) — the
    # paper's C engine had collection dominating everywhere.
    assert stat["FULL"] > stat["BASE"]
    assert stat["EPTSPC"] < stat["FULL"]
    assert null["LAZYCON"] < null["FULL"]
    assert null["EPTSPC"] < null["FULL"]
    # Resource syscalls are hit harder than null in FULL (asserted on
    # absolute added cost; our simulated null's ~1µs baseline inflates
    # relative numbers).
    stat_added = results["stat"]["FULL"] - results["stat"]["DISABLED"]
    null_added = results["null"]["FULL"] - results["null"]["DISABLED"]
    assert stat_added > 3 * null_added

    # COMPILED extends the ladder: never worse than EPTSPC anywhere
    # (modulo timing noise on rows where both configurations do the
    # same work), and strictly faster on the path-walking rows whose
    # traversals the negative-decision cache short-circuits.
    for op in LMBENCH_OPS:
        assert results[op]["COMPILED"] <= results[op]["EPTSPC"] * NOISE_TOLERANCE, (
            "COMPILED regressed on {}: {:.2f}us vs EPTSPC {:.2f}us".format(
                op, results[op]["COMPILED"], results[op]["EPTSPC"]
            )
        )
    assert results["stat"]["COMPILED"] < results["stat"]["EPTSPC"]
    assert results["open+close"]["COMPILED"] < results["open+close"]["EPTSPC"]
