"""Table 6: per-syscall microbenchmarks across engine configurations.

Columns: DISABLED (baseline), BASE (enabled, empty rules), FULL (1218
rules, no optimizations), CONCACHE (+context caching), LAZYCON (+lazy
retrieval), EPTSPC (+entrypoint chains).  Shape expectations follow the
paper: BASE ≈ DISABLED, FULL is the blow-up (worst on ``stat``/``open``),
and each optimization column recovers cost, with EPTSPC landing within
a few percent on most rows.
"""

import pytest

from repro.analysis.tables import format_table, overhead_pct
from repro.workloads.lmbench import LMBENCH_OPS, LmbenchSuite, TABLE6_COLUMNS, run_table6

COLUMNS = ["DISABLED", "BASE", "FULL", "CONCACHE", "LAZYCON", "EPTSPC"]


@pytest.mark.parametrize("column", COLUMNS)
def test_stat_per_column(benchmark, column):
    suite = LmbenchSuite(column)
    benchmark(suite.op_stat)


@pytest.mark.parametrize("column", ["DISABLED", "BASE", "EPTSPC"])
def test_open_close_per_column(benchmark, column):
    suite = LmbenchSuite(column)
    benchmark(suite.op_open_close)


def test_table6_grid(run_once, emit):
    results = run_once(run_table6, iterations=800)
    rows = []
    for op in LMBENCH_OPS:
        base = results[op]["DISABLED"]
        row = [op] + [
            "{:.2f} ({:+.1f}%)".format(results[op][c], overhead_pct(base, results[op][c]))
            for c in COLUMNS
        ]
        rows.append(tuple(row))
    emit(
        format_table(
            ["syscall"] + COLUMNS,
            rows,
            title="Table 6: lmbench-style microbenchmarks (us, % vs DISABLED)",
        )
    )

    stat = {c: results["stat"][c] for c in COLUMNS}
    null = {c: results["null"][c] for c in COLUMNS}
    # FULL is the outlier; the optimizations claw the cost back.  In
    # our Python engine rule *scanning* dominates on path-walking
    # syscalls (so EPTSPC is the decisive column there), while context
    # *collection* dominates on null (so LAZYCON shows there) — the
    # paper's C engine had collection dominating everywhere.
    assert stat["FULL"] > stat["BASE"]
    assert stat["EPTSPC"] < stat["FULL"]
    assert null["LAZYCON"] < null["FULL"]
    assert null["EPTSPC"] < null["FULL"]
    # Resource syscalls are hit harder than null in FULL (asserted on
    # absolute added cost; our simulated null's ~1µs baseline inflates
    # relative numbers).
    stat_added = results["stat"]["FULL"] - results["stat"]["DISABLED"]
    null_added = results["null"]["FULL"] - results["null"]["DISABLED"]
    assert stat_added > 3 * null_added
