"""Table 8: entrypoint classification vs invocation threshold.

Runs the classifier over the synthetic two-week trace and renders the
paper's table next to the printed values.  This reproduction is exact:
the synthesis is constrained to the trace marginals the paper reports,
and the classification algorithm does the rest.
"""

from repro.analysis.tables import format_table
from repro.rulegen.classify import threshold_sweep, zero_fp_threshold
from repro.rulegen.synth import synthesize_trace

PAPER = {
    0: (4570, 664, 0, 5234, 525),
    5: (4436, 508, 290, 2329, 235),
    10: (4384, 482, 368, 1536, 157),
    50: (4257, 480, 497, 490, 28),
    100: (4247, 480, 507, 295, 18),
    500: (4233, 480, 521, 64, 4),
    1000: (4230, 480, 524, 34, 1),
    1149: (4229, 480, 525, 30, 0),
    5000: (4229, 480, 525, 11, 0),
}


def test_table8(run_once, emit):
    def build():
        records = synthesize_trace(seed=0)
        return records, threshold_sweep(records)

    records, sweep = run_once(build)
    rows = []
    exact = True
    for row in sweep:
        t = row["threshold"]
        ours = (row["high_only"], row["low_only"], row["both"], row["rules_produced"], row["false_positives"])
        rows.append((t,) + ours + ("exact" if ours == PAPER[t] else "differs: paper={}".format(PAPER[t]),))
        exact = exact and ours == PAPER[t]
    emit(
        format_table(
            ["Threshold", "High Only", "Low Only", "Both", "Rules", "False Positives", "vs paper"],
            rows,
            title="Table 8: entrypoint classification vs invocation threshold",
        )
    )
    assert exact
    assert zero_fp_threshold(records) == 1149
