"""§6.3.2: OS-distributor launch-environment consistency.

Paper headline: 232 of 318 programs were launched in the packaged
environment every time, so distributor-shipped rules cover them as-is.
"""

from repro.analysis.tables import format_table
from repro.rulegen.distro import consistent_programs, synthesize_launches


def test_distro_consistency(run_once, emit):
    def analyze():
        launches = synthesize_launches()
        return consistent_programs(launches), len(launches)

    (consistent, inconsistent), total_launches = run_once(analyze)
    emit(
        format_table(
            ["Metric", "Ours", "Paper"],
            [
                ("programs traced", len(consistent) + len(inconsistent), 318),
                ("consistent environment", len(consistent), 232),
                ("inconsistent", len(inconsistent), 318 - 232),
                ("launch records", total_launches, "~"),
            ],
            title="Section 6.3.2: launch-environment consistency",
        )
    )
    assert len(consistent) == 232
    assert len(consistent) + len(inconsistent) == 318
