"""Figure 5: SymLinksIfOwnerMatch — program checks vs rule R8.

Requests/second over the paper's (clients, path-length) grid for both
modes.  Shape expectations: the firewall mode wins every cell, and its
advantage grows with path length (the program mode pays per-component
lstat/stat syscalls on every request).
"""

import pytest

from repro.analysis.tables import format_table
from repro.workloads.webbench import (
    FIGURE5_CLIENTS,
    FIGURE5_PATH_LENGTHS,
    apache_requests_per_second,
    figure5_sweep,
)


@pytest.mark.parametrize("mode", ["program", "pf"])
@pytest.mark.parametrize("depth", [1, 9])
def test_request_latency(benchmark, mode, depth):
    from repro.workloads.webbench import _build_server

    servers, url = _build_server(mode, depth, clients=1)
    server = servers[0]

    def once():
        assert server.serve(url).status == 200

    benchmark(once)


def test_figure5_grid(run_once, emit):
    rows = run_once(figure5_sweep, requests=200)
    emit(
        format_table(
            ["clients", "n", "program req/s", "PF req/s", "PF improvement %"],
            [
                (r["clients"], r["path_length"], r["program_rps"], r["pf_rps"], r["pf_improvement_pct"])
                for r in rows
            ],
            title="Figure 5: SymLinksIfOwnerMatch in program vs PF rule R8",
        )
    )
    from repro.analysis.figures import grouped_bar_chart

    groups = []
    for r in rows:
        groups.append(
            (
                "c={}, n={}".format(r["clients"], r["path_length"]),
                [("PF Rules", r["pf_rps"]), ("Program", r["program_rps"])],
            )
        )
    emit(grouped_bar_chart(groups, title="Figure 5 (bars, requests/second)", unit=" req/s"))
    # The PF mode must win every cell...
    assert all(r["pf_improvement_pct"] > 0 for r in rows)
    # ...and the advantage must grow with path length at high client
    # counts (paper: 3.02% at n=1 up to 8.36% at n=9 for c=200).
    by_c = {}
    for r in rows:
        by_c.setdefault(r["clients"], {})[r["path_length"]] = r["pf_improvement_pct"]
    for c, series in by_c.items():
        assert series[9] > series[1], "no growth with n for c={}: {}".format(c, series)
