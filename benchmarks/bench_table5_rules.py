"""Table 5: the printed rules parse, install, and enforce.

Round-trips every printed rule through the pftables parser and measures
installation throughput for the full 1218-rule base (rule installation
includes entrypoint-index and required-field recomputation, so this is
the cost an OS distributor's package-install hook pays).
"""

from repro.analysis.tables import format_table
from repro.firewall.engine import ProcessFirewall
from repro.firewall.pftables import parse_rule
from repro.rulesets.default import PAPER_TABLE5_TEXTS
from repro.rulesets.generated import generate_full_rulebase


def test_table5_rules_parse(run_once, emit):
    parsed = run_once(lambda: [parse_rule(text) for text in PAPER_TABLE5_TEXTS])
    rows = []
    for i, p in enumerate(parsed):
        rows.append((
            "R{}".format(i + 1),
            p.chain,
            type(p.rule.target).__name__.replace("Target", "").upper(),
            len(p.rule.matches),
            "{:04x}".format(int(p.rule.required_fields)),
        ))
    emit(
        format_table(
            ["Rule", "Chain", "Target", "Matches", "Ctx bitmask"],
            rows,
            title="Table 5: printed rules, parsed",
        )
    )
    assert len(parsed) == 12


def test_full_rulebase_install_speed(benchmark):
    texts = generate_full_rulebase()

    def install():
        firewall = ProcessFirewall()
        firewall.install_all(texts)
        return firewall.rules.rule_count()

    count = benchmark(install)
    assert count == 1218
