"""Table 1: resource access attack classes and their CVE counts.

Static taxonomy data, rendered in the paper's print order, plus the
CVE-share footer.  The benchmark times taxonomy assembly (trivially
fast — included so the artifact is complete).
"""

from repro.analysis.tables import format_table
from repro.attacks.taxonomy import CVE_SHARE, table1_rows


def test_table1(run_once, emit):
    rows = run_once(table1_rows)
    body = [
        (cls.name, cls.cwe, cls.cve_pre2007, cls.cve_2007_2012)
        for cls in rows
    ]
    body.append(("% Total CVEs", "-", "{:.2%}".format(CVE_SHARE["<2007"]), "{:.2%}".format(CVE_SHARE["2007-12"])))
    emit(
        format_table(
            ["Attack Class", "CWE class", "CVE <2007", "CVE 2007-12"],
            body,
            title="Table 1: Resource access attack classes",
        )
    )
    assert len(rows) == 8
