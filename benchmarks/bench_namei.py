"""Name-resolution fast path: warm-hit vs cold-walk, and lmbench impact.

Two measurements, committed to ``benchmarks/BENCH_namei.json``:

1. **Micro** — ``PathWalker.resolve`` of a deep path with no observer,
   warm (dcache on, primed) vs cold (dcache off).  This isolates what
   the walk-replay cache removes: per-component directory probing,
   ``WalkStep`` allocation, and prefix strings.  Gate: warm ≥ 3×
   faster.

2. **lmbench rows** — ``stat``/``open+close`` with the full JITTED
   rule base attached, dcache on vs off, at two path depths: the
   paper's 2-component ``/etc/passwd`` and a 6-component deep config
   path.  Per-component LSM + firewall mediation re-runs live on every
   replayed step (that's the invariant), so the win here is bounded by
   the walk share of each row — the ``stat`` rows (resolution *is* the
   syscall) are the path-heavy gate (≥ 1.15×); the ``open+close``
   rows carry file-table + FILE_OPEN/close mediation on top, so they
   are reported and must not regress.  Columns are timed in
   interleaved best-of-N passes (the ``run_table6`` discipline) so
   allocator drift can't masquerade as a dcache effect.

``PF_NAMEI_ITERS`` overrides the per-cell iteration budget; small
values (< 500, e.g. a quick smoke) skip the timing gates, which need
steady-state numbers — the emitter still runs, but won't clobber the
committed artifact.
"""

import gc
import json
import os
import platform
import time

import pytest

from repro.api import Session
from repro.workloads.lmbench import TARGET_FILE, time_operation

NAMEI_JSON = os.path.join(os.path.dirname(__file__), "BENCH_namei.json")

#: Acceptance gates (see ISSUE 10): warm-hit resolution vs cold walk,
#: and the dcache-on/off ratio on the deep (path-heavy) lmbench rows.
MICRO_GATE = 3.0
PATH_ROW_GATE = 1.15

#: Shallow rows must not *regress* past timing noise (they improve too,
#: just with less walk to amortize against per-step mediation).
NOISE_TOLERANCE = 1.10

DEEP_DIR = "/usr/share/app/config/deep"
DEEP_FILE = DEEP_DIR + "/settings.conf"


def _iterations(default=4000):
    return int(os.environ.get("PF_NAMEI_ITERS", default))


def _time_resolve(kernel, path, iterations):
    """Average microseconds per observer-less resolution."""
    resolve = kernel.walker.resolve
    for _ in range(min(200, iterations)):
        resolve(path)
    gc.disable()
    try:
        start = time.perf_counter()
        for _ in range(iterations):
            resolve(path)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed / iterations * 1e6


def _micro(iterations):
    """Warm-hit vs cold-walk resolution of one deep path."""
    from repro.kernel import Kernel

    kernel = Kernel()
    kernel.mkdirs(DEEP_DIR + "/nested")
    kernel.add_file(DEEP_DIR + "/nested/leaf.conf", b"x")
    path = DEEP_DIR + "/nested/leaf.conf"
    kernel.dcache.enabled = True
    warm = _time_resolve(kernel, path, iterations)
    kernel.dcache.enabled = False
    cold = _time_resolve(kernel, path, iterations)
    return {
        "path": path,
        "warm_us": round(warm, 3),
        "cold_us": round(cold, 3),
        "ratio": round(cold / warm, 2) if warm else None,
    }


def _lmbench_suite(dcache):
    """One configured world + the four operations for one column."""
    session = Session(engine="JITTED", rules=_full_rules, dcache=dcache)
    kernel = session.kernel
    kernel.mkdirs(DEEP_DIR)
    kernel.add_file(DEEP_FILE, b"x" * 32)
    proc = kernel.spawn("lmbench", uid=0, label="unconfined_t", binary_path="/bin/sh")
    for i in range(25):
        proc.call(proc.binary, 0x900000 + i * 0x40, function="f{}".format(i))
    kernel.dcache.clear()  # world setup must not pre-warm the on column
    sysi = kernel.sys

    def stat_shallow():
        sysi.stat(proc, TARGET_FILE)

    def open_close_shallow():
        fd = sysi.open(proc, TARGET_FILE)
        sysi.close(proc, fd)

    def stat_deep():
        sysi.stat(proc, DEEP_FILE)

    def open_close_deep():
        fd = sysi.open(proc, DEEP_FILE)
        sysi.close(proc, fd)

    ops = (
        ("stat", stat_shallow),
        ("open+close", open_close_shallow),
        ("stat_deep", stat_deep),
        ("open+close_deep", open_close_deep),
    )
    return ops, kernel


def _lmbench_grid(iterations, repeats=5):
    """Both columns, interleaved best-of-``repeats`` passes.

    Returns ``(cold_rows, warm_rows, warm_kernel)`` where each rows
    dict maps row name -> best-pass microseconds.
    """
    suites = {False: _lmbench_suite(False), True: _lmbench_suite(True)}
    per_pass = max(50, iterations // repeats)
    results = {False: {}, True: {}}
    for _ in range(repeats):
        for dcache in (False, True):
            ops, _kernel = suites[dcache]
            gc.collect()
            for name, fn in ops:
                sample = time_operation(fn, iterations=per_pass)
                best = results[dcache].get(name)
                if best is None or sample < best:
                    results[dcache][name] = sample
    return results[False], results[True], suites[True][1]


def _full_rules(firewall):
    from repro.rulesets.generated import install_full_rulebase

    install_full_rulebase(firewall)


def test_namei_fast_path(run_once, emit):
    """The committed artifact plus both acceptance gates."""
    iterations = _iterations()

    def measure():
        micro = _micro(iterations * 4)
        cold_rows, warm_rows, kernel = _lmbench_grid(iterations)
        return micro, cold_rows, warm_rows, kernel

    micro, cold_rows, warm_rows, kernel = run_once(measure)

    lmbench = {}
    for name in sorted(cold_rows):
        cold = cold_rows[name]
        warm = warm_rows[name]
        lmbench[name] = {
            "dcache_off_us": round(cold, 3),
            "dcache_on_us": round(warm, 3),
            "speedup": round(cold / warm, 3) if warm else None,
        }

    lines = ["BENCH_namei: warm-hit resolution {:.3f}us vs cold {:.3f}us ({:.1f}x)".format(
        micro["warm_us"], micro["cold_us"], micro["ratio"])]
    for name, row in sorted(lmbench.items()):
        lines.append("  {:<16} dcache off {:7.2f}us  on {:7.2f}us  ({:.3f}x)".format(
            name, row["dcache_off_us"], row["dcache_on_us"], row["speedup"]))
    emit("\n".join(lines))

    payload = {
        "benchmark": "namei_fast_path",
        "iterations": iterations,
        "python": platform.python_version(),
        "gates": {"micro_warm_vs_cold": MICRO_GATE, "path_rows": PATH_ROW_GATE},
        "micro": micro,
        "lmbench_jitted_full_rules": lmbench,
        "dcache_counters": {
            "{}:{}".format(cache, result): value
            for (cache, result), value in sorted(kernel.dcache.counters().items())
        },
    }
    rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    # Smoke runs exercise the emitter but must not clobber the
    # committed steady-state artifact.
    if iterations >= 500:
        with open(NAMEI_JSON, "w") as fh:
            fh.write(rendered)

    # The on column must really have served warm walks.
    assert kernel.dcache.walks.hits > 0

    if iterations < 500:
        pytest.skip("PF_NAMEI_ITERS too small for stable timing gates")

    assert micro["ratio"] >= MICRO_GATE, (
        "warm-hit resolution only {:.2f}x faster than cold (gate {}x)".format(
            micro["ratio"], MICRO_GATE))
    for name in ("stat", "stat_deep"):
        speedup = lmbench[name]["speedup"]
        assert speedup >= PATH_ROW_GATE, (
            "dcache speedup on {} only {:.3f}x (gate {}x)".format(
                name, speedup, PATH_ROW_GATE))
    for name in ("open+close", "open+close_deep"):
        speedup = lmbench[name]["speedup"]
        assert speedup >= 1.0 / NOISE_TOLERANCE, (
            "dcache regressed {}: {:.3f}x".format(name, speedup))


def test_namei_smoke():
    """CI gate sized for every run: tiny budget, loose bound.

    Asserts the structural facts that hold at any budget — warm hits
    beat cold walks by the gate margin (the micro ratio is ~14x at
    steady state, so 3x holds even under CI noise), and the lmbench
    stat row does not *lose* to the cold column.
    """
    iterations = int(os.environ.get("PF_NAMEI_SMOKE_ITERS", 2000))
    micro = _micro(iterations)
    assert micro["ratio"] >= MICRO_GATE, micro
    cold_rows, warm_rows, kernel = _lmbench_grid(max(400, iterations // 2), repeats=2)
    assert kernel.dcache.walks.hits > 0
    assert warm_rows["stat"] <= cold_rows["stat"] * NOISE_TOLERANCE
    assert warm_rows["stat_deep"] <= cold_rows["stat_deep"] * NOISE_TOLERANCE
