"""Figure 4: open-variant latency vs path length.

Per-variant pytest-benchmark timings at n=7 plus the full grid (µs and
syscall counts) at n ∈ {1, 4, 7}.  Shape expectations asserted:
``safe_open`` grows steeply with n; ``safe_open_PF`` stays within a
modest factor of the bare ``open``.
"""

import pytest

from repro.analysis.tables import format_table, overhead_pct
from repro.programs.libc import OPEN_VARIANTS
from repro.workloads.openbench import FIGURE4_PATH_LENGTHS, _build, run_figure4, syscall_counts

VARIANTS = list(OPEN_VARIANTS)


@pytest.mark.parametrize("variant", VARIANTS)
def test_variant_latency_n7(benchmark, variant):
    kernel, proc, path = _build(7, with_firewall=(variant == "safe_open_PF"))
    fn = OPEN_VARIANTS[variant]
    sys = kernel.sys

    def once():
        sys.close(proc, fn(kernel, proc, path))

    benchmark(once)


def test_figure4_grid(run_once, emit):
    def grid():
        return run_figure4(iterations=250), syscall_counts()

    timings, counts = run_once(grid)
    rows = []
    for variant in VARIANTS:
        for n in FIGURE4_PATH_LENGTHS:
            rows.append((
                variant,
                n,
                timings[variant][n],
                counts[variant][n],
                overhead_pct(timings["open"][n], timings[variant][n]),
            ))
    emit(
        format_table(
            ["Variant", "n", "us/call", "syscalls", "overhead vs open %"],
            rows,
            title="Figure 4: open variants vs path length",
        )
    )
    from repro.analysis.figures import grouped_bar_chart

    emit(
        grouped_bar_chart(
            [
                ("n = {}".format(n), [(v, timings[v][n]) for v in VARIANTS])
                for n in FIGURE4_PATH_LENGTHS
            ],
            title="Figure 4 (bars, us/call)",
            unit=" us",
        )
    )
    # Shape: safe_open is the outlier and grows with n.
    assert timings["safe_open"][7] > timings["safe_open"][1]
    assert timings["safe_open"][7] > 3 * timings["open"][7]
    # safe_open_PF stays close to the bare open (paper: 2.3% at n=7;
    # our Python engine pays more per hook, so allow a small factor).
    assert timings["safe_open_PF"][7] < 2 * timings["open"][7]
    # The cheap program checks sit between open and safe_open.
    assert timings["open"][7] <= timings["open_nolink"][7] <= timings["safe_open"][7]
