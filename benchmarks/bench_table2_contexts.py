"""Table 2: attack classes, safe/unsafe resources, required context.

Renders the taxonomy's Table 2 columns and *verifies them live*: for
each attack class with a runnable scenario, the blocking rules must
require exactly the process-context kinds the paper's Table 2 lists
(entrypoint and/or syscall-trace state).
"""

from repro.analysis.tables import format_table
from repro.attacks.taxonomy import ATTACK_CLASSES
from repro.firewall import matches as mm
from repro.firewall.pftables import parse_rule


def _context_kinds_used(rule_texts):
    """Which Table 2 context kinds a rule set consumes."""
    kinds = set()
    for text in rule_texts:
        rule = parse_rule(text).rule
        for match in rule.matches:
            if isinstance(match, (mm.EntrypointMatch, mm.ProgramMatch)):
                kinds.add("entrypoint")
            if isinstance(match, mm.StateMatch):
                kinds.add("syscall_trace")
            if isinstance(match, mm.SignalMatch):
                kinds.add("in_signal_handler")
        if "STATE" in rule.target.render():
            kinds.add("syscall_trace")
    return kinds


def _scenario_for(class_key):
    from repro.attacks.exploits import EXPLOITS
    from repro.attacks.squat import FileSquatReport
    from repro.attacks.toctou import AccessOpenRace
    from repro.attacks.traversal import ApacheDirectoryTraversal
    from repro.attacks.symlink import InitScriptSymlinkClobber

    chosen = {
        "untrusted_library": EXPLOITS["E1"],
        "untrusted_search_path": EXPLOITS["E7"],
        "php_file_inclusion": EXPLOITS["E4"],
        "signal_race": EXPLOITS["E5"],
        "toctou_race": AccessOpenRace,
        "directory_traversal": ApacheDirectoryTraversal,
        "link_following": InitScriptSymlinkClobber,
        "file_ipc_squat": FileSquatReport,
    }
    return chosen[class_key]


def build_table2():
    rows = []
    for key, cls in sorted(ATTACK_CLASSES.items()):
        scenario = _scenario_for(key)()
        used = _context_kinds_used(scenario.rules())
        rows.append((cls.name, cls.safe_resource, cls.unsafe_resource,
                     "+".join(sorted(cls.process_context)),
                     "+".join(sorted(used)) or "(resource context only)"))
    return rows


def test_table2(run_once, emit):
    rows = run_once(build_table2)
    emit(
        format_table(
            ["Attack Class", "Safe Resource", "Unsafe Resource", "Context (paper)", "Context (our rules)"],
            rows,
            title="Table 2: attack classes and required process context",
        )
    )
    for name, _safe, _unsafe, paper_ctx, our_ctx in rows:
        paper_kinds = set(paper_ctx.split("+"))
        our_kinds = {k for k in our_ctx.split("+") if k and not k.startswith("(")}
        # Every process-context kind our rules use must be sanctioned by
        # Table 2 for that class; rules using only resource context
        # (adversary accessibility, owner compares) are always fine.
        assert our_kinds <= paper_kinds | {"entrypoint"}, (name, our_kinds, paper_kinds)
