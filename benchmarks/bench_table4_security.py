"""Table 4 / §6.1: the nine exploits, firewall off vs on.

Regenerates the security-evaluation matrix: every exploit must succeed
on the stock kernel, be dropped by the Process Firewall, and leave the
program's legitimate function intact.
"""

from repro.analysis.tables import format_table
from repro.attacks.exploits import run_security_evaluation


def test_table4_security_matrix(run_once, emit):
    rows = run_once(run_security_evaluation)
    emit(
        format_table(
            ["#", "Program", "Reference", "Class", "Exploits stock?", "PF blocks?", "Benign OK?"],
            [
                (
                    r["id"],
                    r["program"],
                    r["reference"],
                    r["class"],
                    "yes" if r["succeeds_unprotected"] else "NO",
                    "yes" if r["blocked_protected"] else "NO",
                    "yes" if r["benign_ok"] else "NO",
                )
                for r in rows
            ],
            title="Table 4: exploits tested against the Process Firewall",
        )
    )
    assert all(r["succeeds_unprotected"] and r["blocked_protected"] and r["benign_ok"] for r in rows)
