"""Baseline comparison: system-only defences vs the Process Firewall.

Regenerates the paper's §2.2 argument as a measured matrix: each
defence against (a) its target attack, (b) two legitimate workloads
that *look* like the attack to a context-free mechanism.  The firewall
is the only row that wins every column.
"""

from repro.analysis.tables import format_table
from repro.baselines.compare import comparison_matrix


def test_baseline_matrix(run_once, emit):
    rows = run_once(comparison_matrix)
    emit(
        format_table(
            ["defense", "symlink attack succeeds", "benign link sharing ok", "benign log rotation ok"],
            [(d, str(a), str(s), str(r)) for d, a, s, r in rows],
            title="Baselines: system-only defences vs the Process Firewall",
        )
    )
    by_name = {d: (a, s, r) for d, a, s, r in rows}
    assert by_name["none"] == (True, True, True)
    # RaceGuard has no view of symlink traversal (it keys on check/use
    # identity), so the planted-link attack sails through — and it
    # still breaks log rotation.  False negative + false positive.
    assert by_name["raceguard"][0] is True
    assert by_name["raceguard"][2] is False
    # Openwall stops the attack but also benign sharing.
    assert by_name["openwall"] == (False, False, True)
    # The context-aware firewall is the only clean row.
    assert by_name["process firewall"] == (False, True, True)
