"""Ablations of the design choices DESIGN.md calls out.

1. **Entrypoint chains vs linear scan** (§4.3): rules-evaluated per
   operation as the rule base grows — the index keeps work flat while
   the linear scan grows linearly.
2. **Per-process vs global traversal state** (§5.1): the iptables-style
   global state forces one interrupt-disable per invocation; the
   per-process design needs none.
3. **Lazy vs eager context retrieval** (§4.2): context-module
   collections per syscall.
4. **Compiled dispatch + negative-decision cache** (beyond the paper's
   ladder): whole traversals short-circuited per process once a
   default-allow verdict is proven context-independent.
"""

import pytest

from repro.analysis.tables import format_table
from repro.firewall.engine import EngineConfig, ProcessFirewall
from repro.rulesets.generated import generate_full_rulebase
from repro.world import build_world, spawn_root_shell

SIZES = [50, 200, 800]


def _run_workload(config, rule_count):
    world = build_world()
    world.audit_enabled = False
    pf = ProcessFirewall(config)
    world.attach_firewall(pf)
    pf.install_all(generate_full_rulebase(size=rule_count))
    root = spawn_root_shell(world)
    for _ in range(50):
        world.sys.stat(root, "/etc/passwd")
    return pf.stats


def test_entrypoint_chain_scaling(run_once, emit):
    def sweep():
        rows = []
        for size in SIZES:
            linear = _run_workload(EngineConfig.lazycon(), size)
            indexed = _run_workload(EngineConfig.optimized(), size)
            rows.append((size, linear.rules_evaluated, indexed.rules_evaluated))
        return rows

    rows = run_once(sweep)
    emit(
        format_table(
            ["rules installed", "linear scan evals", "EPTSPC evals"],
            rows,
            title="Ablation: entrypoint-specific chains vs linear scan",
        )
    )
    # Linear grows with the rule base; the index stays flat.
    assert rows[-1][1] > rows[0][1] * 2
    assert rows[-1][2] <= rows[0][2] * 1.5


def test_traversal_state_ablation(run_once, emit):
    def compare():
        per_process = _run_workload(EngineConfig.optimized(), 100)
        global_state = _run_workload(
            EngineConfig.optimized().clone(global_traversal_state=True), 100
        )
        return per_process, global_state

    per_process, global_state = run_once(compare)
    emit(
        format_table(
            ["design", "invocations", "irq disables"],
            [
                ("per-process state (paper)", per_process.invocations, per_process.irq_disables),
                ("global state (iptables)", global_state.invocations, global_state.irq_disables),
            ],
            title="Ablation: traversal-state placement",
        )
    )
    assert per_process.irq_disables == 0
    assert global_state.irq_disables == global_state.invocations


def test_lazy_context_ablation(run_once, emit):
    def compare():
        eager = _run_workload(EngineConfig.concache(), 400)
        lazy = _run_workload(EngineConfig.lazycon(), 400)
        return eager, lazy

    eager, lazy = run_once(compare)
    eager_total = sum(eager.context_collections.values())
    lazy_total = sum(lazy.context_collections.values())
    emit(
        format_table(
            ["mode", "context collections", "abstract cost"],
            [
                ("eager (CONCACHE)", eager_total, eager.context_cost),
                ("lazy (LAZYCON)", lazy_total, lazy.context_cost),
            ],
            title="Ablation: lazy vs eager context retrieval",
        )
    )
    assert lazy_total < eager_total
    assert lazy.context_cost < eager.context_cost


def test_compiled_dispatch_ablation(run_once, emit):
    def compare():
        eptspc = _run_workload(EngineConfig.optimized(), 400)
        compiled = _run_workload(EngineConfig.compiled(), 400)
        return eptspc, compiled

    eptspc, compiled = run_once(compare)
    emit(
        format_table(
            ["engine", "invocations", "rules evaluated", "decision-cache hits"],
            [
                ("EPTSPC", eptspc.invocations, eptspc.rules_evaluated, eptspc.decision_cache_hits),
                (
                    "COMPILED",
                    compiled.invocations,
                    compiled.rules_evaluated,
                    compiled.decision_cache_hits,
                ),
            ],
            title="Ablation: compiled dispatch + negative-decision cache",
        )
    )
    # The repeated stat loop is exactly the shape the decision cache
    # eats: after the first traversal per (op, entrypoint) shape, whole
    # walks are skipped — so COMPILED evaluates no more rules, and the
    # hit counter proves the short-circuit actually fires.
    assert compiled.decision_cache_hits > 0
    assert compiled.rules_evaluated <= eptspc.rules_evaluated
