"""Fork-scale: the CoW state substrate vs eager copies (beyond the paper).

The paper measures per-syscall firewall overhead; this bench measures
the *per-process* state cost the LSM-overhead literature flags as the
scaling limit — what ``fork(2)`` pays to propagate the firewall state
bundle (STATE dictionary, negative-decision cache, context cache) and
what a storm of live children holds in memory.  One warm pre-fork
parent (8192 STATE entries, a decision cache with 4 ops x 512
entrypoint heads — see :mod:`repro.workloads.forkscale`) forks
1k/10k/100k children under the two ``kernel.fork_state_mode`` values:

- ``eager`` — deep copy at fork: the baseline, linear bytes and fork
  time in parent-state size (the measured figure includes the
  allocator/GC pressure of materializing gigabytes of replicas —
  that pressure *is* part of eager's cost at scale);
- ``cow`` — O(1) structural sharing, copy deferred to first write.

Writes ``benchmarks/BENCH_fork_scale.json`` when run at full budget
(max scale >= 100000).  Gates (full budget): CoW >= 10x eager fork
throughput at 10k live processes; CoW state bytes sub-linear (10k
live must hold < 2x the 1k-live bytes, vs the eager baseline's ~10x);
CoW-vs-eager parity on verdicts/logs/stats/state views.

Environment knobs: ``PF_FORK_SCALE_SCALES`` (default
``1000,10000,100000``), ``PF_FORK_SCALE_STATE_KEYS`` (8192),
``PF_FORK_SCALE_EAGER_MAX`` (default 10000: the largest scale the
eager baseline is *measured* at — the 100k eager point costs ~40 GB
and minutes of GC; raise to 100000 to measure the full curve),
``PF_FORK_SCALE_HEAP_MAX`` (default 10000: largest scale that also
runs the untimed ``tracemalloc`` heap pass), ``PF_FORK_SMOKE_LIVE`` /
``PF_FORK_SMOKE_EAGER_LIVE`` for the CI smoke.
"""

import json
import os
import platform

from repro.analysis.tables import format_table
from repro.workloads.forkscale import (
    DEFAULT_STATE_KEYS,
    fork_parity_observables,
    measure_fork_point,
)

FORK_JSON = os.path.join(os.path.dirname(__file__), "BENCH_fork_scale.json")

#: Full-budget gate: grids whose largest scale is below this still run
#: (CI smoke budgets) but must not clobber the committed artifact.
FULL_BUDGET_MAX_SCALE = 100000


def _scales():
    raw = os.environ.get("PF_FORK_SCALE_SCALES", "1000,10000,100000")
    return [int(n) for n in raw.split(",")]


def _state_keys():
    return int(os.environ.get("PF_FORK_SCALE_STATE_KEYS", DEFAULT_STATE_KEYS))


def _eager_max():
    return int(os.environ.get("PF_FORK_SCALE_EAGER_MAX", 10000))


def _heap_max():
    return int(os.environ.get("PF_FORK_SCALE_HEAP_MAX", 10000))


def _row(point):
    sub = point["substrate"]
    return [
        point["mode"],
        point["live"],
        point["us_per_fork"],
        point["forks_per_sec"],
        round(point["state_bytes"] / 2**20, 2),
        point.get("heap_bytes", ""),
        sub["state_copies"] + sub["decision_copies"],
    ]


def _assert_parity():
    cow = fork_parity_observables("cow")
    eager = fork_parity_observables("eager")
    assert cow["verdicts"] == eager["verdicts"], "verdict divergence cow vs eager"
    assert cow["drops"] == eager["drops"], "drop-log divergence cow vs eager"
    assert cow["counters"] == eager["counters"], "stats divergence cow vs eager"
    assert cow["state_views"] == eager["state_views"], "STATE view divergence"
    # The probe is inheritance-sensitive: each child's first chmod hits
    # the decoy socket, which drops ONLY because the pre-fork STATE
    # invariant reached the child.
    assert cow["verdicts"][0] == "PFDenied"
    return cow


def test_fork_scale_grid(emit, run_once):
    """Fork-throughput/memory grid over scales x {cow, eager}."""
    scales = _scales()
    state_keys = _state_keys()
    eager_max = _eager_max()
    heap_max = _heap_max()

    def build_grid():
        points = []
        for live in scales:
            for mode in ("cow", "eager"):
                if mode == "eager" and live > eager_max:
                    continue  # documented skip: see module docstring
                point = measure_fork_point(mode, live, state_keys=state_keys)
                if live <= heap_max:
                    heap = measure_fork_point(
                        mode, live, state_keys=state_keys, trace_heap=True
                    )
                    point["heap_bytes"] = heap["heap_bytes"]
                points.append(point)
        return points

    points = run_once(build_grid)
    emit(format_table(
        ["mode", "live", "us/fork", "forks/s", "state MiB", "heap B", "cow breaks"],
        [_row(p) for p in points],
        title="Fork scale: warm parent ({} STATE keys), eager vs CoW".format(state_keys),
    ))
    if max(scales) < FULL_BUDGET_MAX_SCALE:
        return

    by = {(p["mode"], p["live"]): p for p in points}
    parity = _assert_parity()
    gate_scale = 10000
    cow10, eager10 = by[("cow", gate_scale)], by[("eager", gate_scale)]
    ratio = cow10["forks_per_sec"] / eager10["forks_per_sec"]
    assert ratio >= 10.0, (
        "CoW fork throughput below 10x eager at {} live: {:.1f}x".format(gate_scale, ratio))
    cow1 = by[("cow", 1000)]
    assert cow10["state_bytes"] < 2 * cow1["state_bytes"], (
        "CoW state bytes not sub-linear: 1k={} 10k={}".format(
            cow1["state_bytes"], cow10["state_bytes"]))
    eager1 = by[("eager", 1000)]
    assert eager10["state_bytes"] > 5 * eager1["state_bytes"], (
        "eager baseline unexpectedly sub-linear — is it still copying?")
    # Write-free children must not have paid a single copy.
    assert cow10["substrate"]["state_copies"] == 0
    assert cow10["substrate"]["decision_copies"] == 0

    payload = {
        "benchmark": "fork_scale",
        "state_keys": state_keys,
        "python": platform.python_version(),
        "eager_measured_max": eager_max,
        "note": (
            "one warm pre-fork parent; timed pass has tracemalloc off; "
            "heap_bytes from a separate traced pass (scales <= {}). "
            "state_bytes counts each distinct backing container once "
            "(unique-by-identity), which is what makes structural "
            "sharing visible. Eager figures include allocator/GC "
            "pressure of materializing per-child replicas; eager "
            "scales above eager_measured_max are skipped "
            "(~4 GB per 10k live at the default parent size).".format(_heap_max())
        ),
        "points": {
            "{}-{}".format(p["mode"], p["live"]): p for p in points
        },
        "gates": {
            "cow_vs_eager_throughput_at_10k": round(ratio, 1),
            "cow_state_growth_1k_to_10k": round(
                cow10["state_bytes"] / cow1["state_bytes"], 3),
            "eager_state_growth_1k_to_10k": round(
                eager10["state_bytes"] / eager1["state_bytes"], 3),
            "parity_drops": len(parity["drops"]),
        },
    }
    with open(FORK_JSON, "w") as fh:
        fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_fork_smoke(emit):
    """CI fork-scale smoke: 10k CoW fork loop + eager ratio + parity.

    The CoW loop runs at the full 10k-process scale with throughput
    and memory gates; the eager baseline runs at a reduced scale
    (``PF_FORK_SMOKE_EAGER_LIVE``, default 1000) and the >= 10x gate
    compares per-fork cost, which for eager only *improves* at lower
    scale (less allocator pressure) — so passing here implies the
    full-scale gate would too.
    """
    live = int(os.environ.get("PF_FORK_SMOKE_LIVE", 10000))
    eager_live = int(os.environ.get("PF_FORK_SMOKE_EAGER_LIVE", 1000))
    cow = measure_fork_point("cow", live)
    eager = measure_fork_point("eager", eager_live)
    ratio = eager["us_per_fork"] / cow["us_per_fork"]
    emit("fork smoke: cow {}x{:.1f}us/fork ({:.0f}/s, {:.1f} MiB state)  "
         "eager {}x{:.1f}us/fork  per-fork ratio {:.0f}x".format(
             live, cow["us_per_fork"], cow["forks_per_sec"],
             cow["state_bytes"] / 2**20,
             eager_live, eager["us_per_fork"], ratio))
    assert ratio >= 10.0, "CoW fork less than 10x cheaper: {:.1f}x".format(ratio)
    # Memory gate: 10k write-free live children share one backing
    # store; the whole substrate must stay within small multiples of
    # one replica's footprint (vs one replica *each* — ~4 GB — eager).
    replica_bytes = eager["state_bytes"] / (eager_live + 1)
    assert cow["state_bytes"] < 8 * replica_bytes, (
        "CoW substrate bytes not shared: {} vs {:.0f}/replica".format(
            cow["state_bytes"], replica_bytes))
    assert cow["substrate"]["state_copies"] == 0
    _assert_parity()
